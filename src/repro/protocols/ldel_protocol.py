"""Algorithms 2 and 3 — distributed localized Delaunay construction.

Algorithm 2 (build ``LDel^1``): every node broadcasts its location,
computes the Delaunay triangulation of its 1-hop neighborhood, marks
its Gabriel edges, and *proposes* each incident local-Delaunay
triangle whose sides fit in one transmission radius and whose angle at
the proposer is at least 60 degrees (every triangle has such a vertex,
so proposals cover all candidates).  The other two vertices accept
exactly when the triangle is Delaunay in *their* neighborhoods; a
triangle joins ``LDel^1`` when all three vertices are positive.  A
vertex proposing a triangle counts as accepting it.

Algorithm 3 (planarize to ``PLDel``): every node broadcasts its
Gabriel edges and accepted triangles (with vertex coordinates, so
receivers can do geometry on them), drops any own triangle whose
circumcircle contains a vertex of an intersecting known triangle, then
broadcasts what it kept; a triangle survives when all three of its
vertices kept it.  When two accepted triangles' edges cross, some
vertex of one is within one unit of some vertex of the other (both
crossing edges are at most one unit long), so every crossing is
discovered from 1-hop broadcasts — the locality argument of Li,
Calinescu & Wan.

The outcome is tested to be *identical* to the centralized reference
(:func:`repro.topology.ldel.planar_local_delaunay_graph`) on random
instances; what this module adds is the message accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.circle import circumcircle, gabriel_disk_empty
from repro.geometry.predicates import segments_cross
from repro.geometry.primitives import Point, angle_at, dist_sq
from repro.geometry.triangulation import delaunay
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import (
    ACCEPT,
    KEPT,
    LOCATION,
    PROPOSAL,
    REJECT,
    STRUCTURE,
    Message,
)
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

Triangle = tuple[int, int, int]
#: A triangle together with its vertex coordinates, as shipped in
#: STRUCTURE / KEPT payloads.
LocatedTriangle = tuple[Triangle, tuple[Point, Point, Point]]


@dataclass(frozen=True)
class LDelProtocolOutcome:
    """Result of the distributed LDel^1 + planarization run."""

    graph: Graph
    triangles: tuple[Triangle, ...]
    gabriel_edges: frozenset[tuple[int, int]]
    rounds: int
    stats: MessageStats


class LDelProcess(NodeProcess):
    """One node running Algorithms 2 and 3."""

    def __init__(
        self,
        node_id: int,
        position: Point,
        neighbor_ids: tuple[int, ...],
        radius: float,
    ) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.radius = radius
        self._neighbor_pos: dict[int, Point] = {}
        self.gabriel_edges: set[tuple[int, int]] = set()
        #: triangles this node proposed or was asked about, with the
        #: verdict of each vertex: vertex -> True/False (None unknown).
        self._verdicts: dict[Triangle, dict[int, Optional[bool]]] = {}
        self.accepted: set[Triangle] = set()
        #: triangles known from neighbors' STRUCTURE broadcasts.
        self._known: dict[Triangle, tuple[Point, Point, Point]] = {}
        self._kept_votes: dict[Triangle, set[int]] = {}
        self.kept: set[Triangle] = set()
        self.final: set[Triangle] = set()
        self._phase = "locations"
        self._done = False

    # -- small helpers ---------------------------------------------------

    def _pos_of(self, v: int) -> Point:
        if v == self.node_id:
            return self.position
        return self._neighbor_pos[v]

    def _tri_points(self, t: Triangle) -> tuple[Point, Point, Point]:
        return (self._pos_of(t[0]), self._pos_of(t[1]), self._pos_of(t[2]))

    def _is_local_delaunay(self, t: Triangle, pts: tuple[Point, Point, Point]) -> bool:
        """Circumcircle of ``t`` empty of this node's 1-hop neighborhood."""
        circle = circumcircle(*pts)
        if circle is None:
            return False
        for w, pw in self._neighbor_pos.items():
            if w in t:
                continue
            if circle.contains(pw):
                return False
        return True

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.broadcast(LOCATION, x=self.position[0], y=self.position[1])

    def receive(self, message: Message) -> None:
        kind = message.kind
        if kind == LOCATION:
            self._neighbor_pos[message.sender] = Point(message["x"], message["y"])
        elif kind == PROPOSAL:
            t: Triangle = tuple(message["triangle"])  # type: ignore[assignment]
            verdicts = self._verdicts.setdefault(t, {v: None for v in t})
            verdicts[message.sender] = True  # proposing implies accepting
            if self.node_id in t and verdicts.get(self.node_id) is None:
                pts = self._tri_points(t)
                mine = self._is_local_delaunay(t, pts)
                verdicts[self.node_id] = mine
                self.broadcast(ACCEPT if mine else REJECT, triangle=t)
        elif kind in (ACCEPT, REJECT):
            t = tuple(message["triangle"])  # type: ignore[assignment]
            if self.node_id in t or t in self._verdicts:
                verdicts = self._verdicts.setdefault(t, {v: None for v in t})
                if message.sender in verdicts:
                    verdicts[message.sender] = kind == ACCEPT
        elif kind == STRUCTURE:
            for raw_t, raw_pts in message["triangles"]:
                t = tuple(raw_t)  # type: ignore[assignment]
                pts = tuple(Point(x, y) for x, y in raw_pts)
                self._known[t] = pts  # type: ignore[assignment]
        elif kind == KEPT:
            for raw_t in message["triangles"]:
                t = tuple(raw_t)  # type: ignore[assignment]
                if self.node_id in t:
                    self._kept_votes.setdefault(t, set()).add(message.sender)

    def finish_round(self, round_index: int) -> None:
        if self._phase == "locations":
            self._compute_and_propose()
            self._phase = "responses"
        elif self._phase == "responses":
            # Proposals went out last round; responses arrive next round.
            self._phase = "tally"
        elif self._phase == "tally":
            self._tally_acceptances()
            self._broadcast_structure()
            self._phase = "prune"
        elif self._phase == "prune":
            self._prune_crossings()
            self._phase = "confirm"
        elif self._phase == "confirm":
            self._confirm_kept()
            self._phase = "done"
            self._done = True

    # -- Algorithm 2 --------------------------------------------------------

    def _compute_and_propose(self) -> None:
        ids = sorted(self._neighbor_pos) + [self.node_id]
        ids.sort()
        pts = [self._pos_of(i) for i in ids]
        r_sq = self.radius * self.radius

        # Gabriel edges incident on me (any blocker is a common
        # neighbor, so testing against my neighborhood is exact).
        for v, pv in self._neighbor_pos.items():
            if gabriel_disk_empty(
                self.position, pv, self._neighbor_pos.values()
            ):
                self.gabriel_edges.add(_edge(self.node_id, v))

        if len(ids) < 3:
            return
        tri = delaunay(pts)
        for a, b, c in tri.triangles:
            t: Triangle = tuple(sorted((ids[a], ids[b], ids[c])))  # type: ignore[assignment]
            if self.node_id not in t:
                continue
            p0, p1, p2 = self._tri_points(t)
            if (
                dist_sq(p0, p1) > r_sq
                or dist_sq(p1, p2) > r_sq
                or dist_sq(p0, p2) > r_sq
            ):
                continue
            others = [v for v in t if v != self.node_id]
            try:
                ang = angle_at(
                    self.position, self._pos_of(others[0]), self._pos_of(others[1])
                )
            except ValueError:
                continue
            if ang < math.pi / 3.0 - 1e-12:
                continue
            verdicts = self._verdicts.setdefault(t, {v: None for v in t})
            if verdicts.get(self.node_id) is None:
                verdicts[self.node_id] = True
                self.broadcast(PROPOSAL, triangle=t)

    def _tally_acceptances(self) -> None:
        for t, verdicts in self._verdicts.items():
            if self.node_id not in t:
                continue
            if all(verdicts.get(v) for v in t):
                self.accepted.add(t)

    # -- Algorithm 3 ---------------------------------------------------------

    def _broadcast_structure(self) -> None:
        payload = [
            (t, tuple((p[0], p[1]) for p in self._tri_points(t)))
            for t in sorted(self.accepted)
        ]
        self.broadcast(
            STRUCTURE,
            triangles=payload,
            gabriel=sorted(self.gabriel_edges),
        )
        for t in self.accepted:
            self._known.setdefault(t, self._tri_points(t))

    def _prune_crossings(self) -> None:
        kept = set(self.accepted)
        for t1 in self.accepted:
            pts1 = self._tri_points(t1)
            circle = circumcircle(*pts1)
            if circle is None:
                kept.discard(t1)
                continue
            for t2, pts2 in self._known.items():
                if t2 == t1:
                    continue
                if not _triangles_cross(t1, pts1, t2, pts2):
                    continue
                if any(
                    v not in t1 and circle.contains(p)
                    for v, p in zip(t2, pts2)
                ):
                    kept.discard(t1)
                    break
        self.kept = kept
        self.broadcast(KEPT, triangles=sorted(kept))
        for t in kept:
            self._kept_votes.setdefault(t, set()).add(self.node_id)

    def _confirm_kept(self) -> None:
        for t in self.kept:
            votes = self._kept_votes.get(t, set())
            if all(v in votes for v in t):
                self.final.add(t)

    @property
    def idle(self) -> bool:
        return self._done


def _edge(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _triangles_cross(
    t1: Triangle,
    pts1: tuple[Point, Point, Point],
    t2: Triangle,
    pts2: tuple[Point, Point, Point],
) -> bool:
    """Whether some edge of ``t1`` properly crosses some edge of ``t2``."""
    e1 = ((0, 1), (1, 2), (0, 2))
    for i, j in e1:
        for k, l in e1:
            if len({t1[i], t1[j], t2[k], t2[l]}) < 4:
                continue
            if segments_cross(pts1[i], pts1[j], pts2[k], pts2[l]):
                return True
    return False


def run_ldel_protocol(
    udg: UnitDiskGraph,
    *,
    stats: Optional[MessageStats] = None,
) -> LDelProtocolOutcome:
    """Run Algorithms 2 + 3 on ``udg``; returns the PLDel graph."""
    net = SyncNetwork(
        udg,
        lambda node_id, _net: LDelProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            udg.radius,
        ),
        stats=stats,
    )
    rounds = net.run(max_rounds=32)

    gabriel: set[tuple[int, int]] = set()
    confirmed: set[Triangle] = set()
    for proc in net.processes:
        gabriel |= proc.gabriel_edges  # type: ignore[attr-defined]
        confirmed |= proc.final  # type: ignore[attr-defined]

    graph = Graph(udg.positions, gabriel, name="PLDel")
    for u, v, w in confirmed:
        graph.add_edge(u, v)
        graph.add_edge(v, w)
        graph.add_edge(u, w)
    # Exactly-cocircular inputs (which the paper assumes away) can
    # leave a crossing pair of Gabriel edges; apply the same
    # deterministic tie-break as the centralized reference.
    from repro.topology.ldel import resolve_degenerate_crossings

    resolve_degenerate_crossings(graph)
    return LDelProtocolOutcome(
        graph=graph,
        triangles=tuple(sorted(confirmed)),
        gabriel_edges=frozenset(gabriel),
        rounds=rounds,
        stats=net.stats,
    )
