"""Beacon-based neighbor discovery and link-failure detection.

The paper assumes each node knows its 1-hop neighbors and that broken
structural links trigger maintenance; this module supplies the actual
mechanism a deployment uses for both: periodic ``Beacon`` broadcasts
and per-neighbor freshness counters.  A neighbor missing
``miss_threshold`` consecutive beacon rounds is declared *lost*; a
beacon from an unknown sender declares a *new* neighbor.

:func:`detect_changes` runs the protocol over a position snapshot
against each node's previous neighbor table and returns, per node, the
lost and gained neighbors — which is exactly the local trigger the
maintenance layer needs (the global
:meth:`~repro.mobility.maintenance.BackboneMaintainer.check` computes
the same thing omnisciently; the tests assert they agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

BEACON = "Beacon"


@dataclass(frozen=True)
class NeighborChange:
    """One node's view of how its neighborhood changed."""

    lost: frozenset[int]
    gained: frozenset[int]

    @property
    def changed(self) -> bool:
        return bool(self.lost or self.gained)


@dataclass(frozen=True)
class DiscoveryOutcome:
    """Result of a discovery run."""

    changes: Mapping[int, NeighborChange]
    rounds: int
    stats: MessageStats

    @property
    def any_change(self) -> bool:
        return any(c.changed for c in self.changes.values())

    def lost_links(self) -> frozenset[tuple[int, int]]:
        """Undirected links some endpoint declared lost."""
        links: set[tuple[int, int]] = set()
        for node, change in self.changes.items():
            for other in change.lost:
                links.add((min(node, other), max(node, other)))
        return frozenset(links)


class BeaconProcess(NodeProcess):
    """Broadcasts beacons; tracks who it hears."""

    def __init__(
        self,
        node_id: int,
        position: Point,
        neighbor_ids,
        known_neighbors: frozenset[int],
        beacon_rounds: int,
        miss_threshold: int,
    ) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.known = known_neighbors
        self.beacon_rounds = beacon_rounds
        self.miss_threshold = miss_threshold
        self._heard_by_round: list[set[int]] = []
        self._current: set[int] = set()
        self._sent = 0
        self.result: NeighborChange | None = None

    def start(self) -> None:
        self.broadcast(BEACON)
        self._sent = 1

    def receive(self, message: Message) -> None:
        if message.kind == BEACON:
            self._current.add(message.sender)

    def finish_round(self, round_index: int) -> None:
        self._heard_by_round.append(self._current)
        self._current = set()
        if self._sent < self.beacon_rounds:
            self.broadcast(BEACON)
            self._sent += 1
        elif self.result is None and len(self._heard_by_round) >= self.beacon_rounds:
            self._conclude()

    def _conclude(self) -> None:
        rounds = self._heard_by_round[-self.beacon_rounds :]
        heard_any = set().union(*rounds) if rounds else set()
        # Lost: known neighbors silent for the last miss_threshold rounds.
        recent = rounds[-self.miss_threshold :]
        recently_heard = set().union(*recent) if recent else set()
        lost = frozenset(n for n in self.known if n not in recently_heard)
        gained = frozenset(n for n in heard_any if n not in self.known)
        self.result = NeighborChange(lost=lost, gained=gained)

    @property
    def idle(self) -> bool:
        return self.result is not None


def detect_changes(
    positions: Sequence[Point],
    radius: float,
    previous_neighbors: Mapping[int, frozenset[int]],
    *,
    beacon_rounds: int = 3,
    miss_threshold: int = 2,
) -> DiscoveryOutcome:
    """Run beacon rounds at the given positions; report neighbor churn.

    ``previous_neighbors`` is each node's last-known neighbor table
    (e.g. from the previous topology).  With a lossless radio,
    ``beacon_rounds`` of beacons make detection exact; the
    ``miss_threshold`` knob exists for lossy radios, where a single
    missed beacon should not kill a live link.
    """
    if beacon_rounds < 1:
        raise ValueError("need at least one beacon round")
    if not 1 <= miss_threshold <= beacon_rounds:
        raise ValueError("miss_threshold must be in [1, beacon_rounds]")
    udg = UnitDiskGraph([Point(p[0], p[1]) for p in positions], radius)

    net = SyncNetwork(
        udg,
        lambda node_id, _net: BeaconProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            previous_neighbors.get(node_id, frozenset()),
            beacon_rounds,
            miss_threshold,
        ),
    )
    rounds = net.run(max_rounds=beacon_rounds + 8)
    changes = {
        proc.node_id: proc.result  # type: ignore[attr-defined]
        for proc in net.processes
        if proc.result is not None  # type: ignore[attr-defined]
    }
    return DiscoveryOutcome(changes=changes, rounds=rounds, stats=net.stats)
