"""The full pipeline: points -> CDS family -> LDel(ICDS) / LDel(ICDS').

This is the paper's contribution end to end: cluster, elect
connectors, induce the backbone unit disk graph, and planarize it with
the distributed localized Delaunay protocol.  Every phase runs as a
message-passing protocol; the result carries the cumulative per-node
message ledger that the communication-cost figures are drawn from, and
separate per-structure ledgers (CDS / ICDS / LDel(ICDS)) matching the
paper's accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.cds import MODES, CDSFamily, build_cds_family
from repro.protocols.clustering import PriorityFn
from repro.protocols.ldel_fast import fast_ldel_protocol
from repro.protocols.ldel_protocol import LDelProtocolOutcome, run_ldel_protocol
from repro.sim.stats import MessageStats

#: Connector election rules the pipeline understands (see
#: :mod:`repro.protocols.connectors`): collect rival IDs and let the
#: smallest win, or claim immediately without waiting.
ELECTIONS = ("smallest-id", "first-response")


@dataclass(frozen=True)
class BackbonePipelineResult:
    """Everything the pipeline produces."""

    family: CDSFamily
    ldel_icds: Graph
    ldel_icds_prime: Graph
    ldel_outcome: LDelProtocolOutcome
    #: Ledgers at each accounting boundary the paper reports:
    #: ``stats_cds`` (clustering + connectors), ``stats_icds`` (+ one
    #: Status per node), ``stats_ldel`` (+ the LDel protocol run on the
    #: backbone, charged to the backbone nodes' original ids).
    stats_cds: MessageStats
    stats_icds: MessageStats
    stats_ldel: MessageStats
    #: Which construction path produced this result (``protocol`` or
    #: ``fast``); the outputs are bit-identical either way.
    mode: str = "protocol"
    #: Wall-clock seconds per phase: ``cds`` (clustering + connectors +
    #: family graphs) and ``ldel`` (backbone planarization).
    timings: Mapping[str, float] = field(default_factory=dict)

    @property
    def udg(self) -> UnitDiskGraph:
        return self.family.udg


def run_backbone_pipeline(
    udg: UnitDiskGraph,
    *,
    priority: Optional[PriorityFn] = None,
    election: str = "smallest-id",
    clustering=None,
    mode: str = "protocol",
) -> BackbonePipelineResult:
    """Build the planar spanner backbone over ``udg``.

    ``clustering`` injects a precomputed (e.g. locally repaired)
    clustering outcome instead of running the election.  ``mode="fast"``
    swaps every protocol replay (election, connectors, LDel) for the
    direct fixed-point computation — bit-identical results, an order of
    magnitude faster at benchmark sizes.
    """
    if election not in ELECTIONS:
        raise ValueError(f"unknown election {election!r}; known: {ELECTIONS}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    cds_started = time.perf_counter()
    family = build_cds_family(
        udg, priority=priority, election=election, clustering=clustering, mode=mode
    )

    # Ledger boundaries: the Status broadcast belongs to the ICDS
    # stage, so subtract it for the CDS-only view.
    stats_icds = family.stats.copy()
    stats_cds = MessageStats()
    stats_cds.merge(family.clustering.stats)
    stats_cds.merge(family.connector_outcome.stats)

    cds_seconds = time.perf_counter() - cds_started

    backbone = sorted(family.backbone_nodes)
    # induced_radio_subgraph == a plain sub-UDG for the standard disk
    # model (bit-identical); for quasi-UDG deployments it keeps the
    # dropped gray-zone links dropped instead of resurrecting them.
    from repro.graphs.quasi import induced_radio_subgraph

    sub_udg = induced_radio_subgraph(udg, backbone, name="ICDS-sub")
    ldel_started = time.perf_counter()
    if mode == "fast":
        ldel_outcome = fast_ldel_protocol(sub_udg)
    else:
        ldel_outcome = run_ldel_protocol(sub_udg)
    ldel_seconds = time.perf_counter() - ldel_started

    # Map the protocol output back to original node ids.
    ldel_icds = Graph(udg.positions, name="LDel(ICDS)")
    for u, v in ldel_outcome.graph.edges():
        ldel_icds.add_edge(backbone[u], backbone[v])
    ldel_icds_prime = Graph(udg.positions, ldel_icds.edges(), name="LDel(ICDS')")
    for dominatee, doms in family.clustering.dominators_of.items():
        for d in doms:
            ldel_icds_prime.add_edge(dominatee, d)

    stats_ldel = stats_icds.copy()
    for (sub_id, kind), count in ldel_outcome.stats.per_node_kind.items():
        stats_ldel.record(backbone[sub_id], kind, count)

    return BackbonePipelineResult(
        family=family,
        ldel_icds=ldel_icds,
        ldel_icds_prime=ldel_icds_prime,
        ldel_outcome=ldel_outcome,
        stats_cds=stats_cds,
        stats_icds=stats_icds,
        stats_ldel=stats_ldel,
        mode=mode,
        timings={"cds": cds_seconds, "ldel": ldel_seconds},
    )
