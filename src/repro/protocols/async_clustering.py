"""Asynchronous clustering — the paper's asynchrony claim, implemented.

Section III-A.1: "If the number of neighbors of each node is known a
priori, then this protocol can also be implemented using asynchronous
communications.  Here, knowing the number of neighbors ensures that a
node does get all updated information of its neighbors so it knows
whether itself has the [winning] ID among all white neighbors."

Concretely: a white node defers its election until it has heard a
``Hello`` from *every* neighbor (counted against the known neighbor
count); after that, each status change re-triggers the check.  The
lowest-ID MIS is timing-independent — whatever the message delays, the
outcome equals the synchronous (and the centralized greedy) result —
which the test suite verifies across latency seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.graphs.udg import UnitDiskGraph
from repro.sim.events import AsyncNetwork, AsyncNodeProcess, LatencyModel
from repro.sim.messages import HELLO, IAM_DOMINATEE, IAM_DOMINATOR, Message
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class AsyncClusteringOutcome:
    """Result of the asynchronous MIS election."""

    dominators: frozenset[int]
    dominators_of: Mapping[int, frozenset[int]]
    finish_time: float
    stats: MessageStats


class AsyncClusteringProcess(AsyncNodeProcess):
    """Event-driven lowest-ID election."""

    def __init__(self, node_id, position, neighbor_ids) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.status = "white"
        self._hellos_heard: set[int] = set()
        self._white_neighbors: set[int] = set()
        #: Neighbors whose decision arrived, possibly *before* their
        #: Hello — per-receiver delays are independent, so message
        #: reordering between two broadcasts of one sender is real.
        self._decided_neighbors: set[int] = set()
        self.my_dominators: set[int] = set()
        self._announced: set[int] = set()

    def start(self) -> None:
        self.broadcast(HELLO)
        self._maybe_elect()  # degree-0 node wins immediately

    def receive(self, message: Message) -> None:
        sender = message.sender
        if message.kind == HELLO:
            self._hellos_heard.add(sender)
            if sender not in self._decided_neighbors:
                self._white_neighbors.add(sender)
        elif message.kind == IAM_DOMINATOR:
            self._decided_neighbors.add(sender)
            self._white_neighbors.discard(sender)
            if self.status != "dominator":
                if self.status == "white":
                    self.status = "dominatee"
                if sender not in self._announced:
                    self.my_dominators.add(sender)
                    self._announced.add(sender)
                    self.broadcast(IAM_DOMINATEE, dominator=sender)
        elif message.kind == IAM_DOMINATEE:
            self._decided_neighbors.add(sender)
            self._white_neighbors.discard(sender)
        self._maybe_elect()

    def _maybe_elect(self) -> None:
        if self.status != "white":
            return
        # The asynchrony precondition: wait for every neighbor's Hello.
        if len(self._hellos_heard) < len(self.neighbor_ids):
            return
        if all(self.node_id < w for w in self._white_neighbors):
            self.status = "dominator"
            self.broadcast(IAM_DOMINATOR)


def run_async_clustering(
    udg: UnitDiskGraph,
    *,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
) -> AsyncClusteringOutcome:
    """Run the asynchronous election to quiescence."""
    net = AsyncNetwork(
        udg,
        lambda node_id, _net: AsyncClusteringProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
        ),
        latency=latency,
        seed=seed,
    )
    finish_time = net.run()
    procs = net.processes
    stalled = [p.node_id for p in procs if p.status == "white"]  # type: ignore[attr-defined]
    if stalled:
        raise RuntimeError(f"async clustering stalled; white nodes: {stalled[:5]}")
    dominators = frozenset(
        p.node_id for p in procs if p.status == "dominator"  # type: ignore[attr-defined]
    )
    dominators_of = {
        p.node_id: frozenset(p.my_dominators)  # type: ignore[attr-defined]
        for p in procs
        if p.status == "dominatee"  # type: ignore[attr-defined]
    }
    return AsyncClusteringOutcome(
        dominators=dominators,
        dominators_of=dominators_of,
        finish_time=finish_time,
        stats=net.stats,
    )
