"""Max-Min d-cluster formation (Amis, Prakash, Huynh, Vuong — INFOCOM 2000).

The paper's reference [16]: a generalization of 1-hop clustering where
every node is within ``d`` hops of its clusterhead, built from ``2d``
flooding rounds:

* **Floodmax** (d rounds): each node repeatedly adopts the largest ID
  heard from its neighbors — large-ID nodes conquer d-hop territory;
* **Floodmin** (d rounds): starting from the floodmax winners, each
  node adopts the *smallest* ID heard — giving smaller IDs a chance to
  reclaim territory and balancing cluster sizes.

Clusterhead selection per the paper's three rules: a node that sees
its own ID in the floodmin phase is a head; otherwise a *node pair*
(an ID appearing in both phases' logs) elects the minimum such ID;
otherwise the maximum floodmax ID wins.  Every node then knows a head
at most ``d`` hops away.

Runs as a synchronous protocol on the simulator (2d+1 broadcasts per
node) with a centralized reference for testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.graphs.udg import UnitDiskGraph
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.stats import MessageStats

FLOODMAX = "Floodmax"
FLOODMIN = "Floodmin"


@dataclass(frozen=True)
class MaxMinOutcome:
    """Result of max-min d-clustering."""

    d: int
    clusterheads: frozenset[int]
    #: Each node's elected head (heads map to themselves).
    head_of: Mapping[int, int]
    rounds: int
    stats: MessageStats


class MaxMinProcess(NodeProcess):
    """One node running the 2d flooding rounds."""

    def __init__(self, node_id, position, neighbor_ids, d: int) -> None:
        super().__init__(node_id, position, neighbor_ids)
        self.d = d
        self.phase_round = 0
        self.winner = node_id
        self.max_log: list[int] = [node_id]
        self.min_log: list[int] = []
        self._heard: list[int] = []
        self.head: int | None = None

    def start(self) -> None:
        self.broadcast(FLOODMAX, winner=self.winner)

    def receive(self, message) -> None:
        if message.kind in (FLOODMAX, FLOODMIN):
            self._heard.append(message["winner"])

    def finish_round(self, round_index: int) -> None:
        if self.head is not None:
            return
        self.phase_round += 1
        heard, self._heard = self._heard, []
        if self.phase_round <= self.d:
            # Floodmax round result.
            self.winner = max([self.winner, *heard])
            self.max_log.append(self.winner)
            if self.phase_round < self.d:
                self.broadcast(FLOODMAX, winner=self.winner)
            else:
                self.min_log.append(self.winner)
                self.broadcast(FLOODMIN, winner=self.winner)
        elif self.phase_round <= 2 * self.d:
            self.winner = min([self.winner, *heard])
            self.min_log.append(self.winner)
            if self.phase_round < 2 * self.d:
                self.broadcast(FLOODMIN, winner=self.winner)
            else:
                self.head = self._elect()

    def _elect(self) -> int:
        # Rule 1: I reclaimed my own ID during floodmin.
        if self.node_id in self.min_log:
            return self.node_id
        # Rule 2: minimum "node pair" — an ID seen in both phases.
        pairs = set(self.max_log) & set(self.min_log)
        pairs.discard(self.node_id)
        if pairs:
            return min(pairs)
        # Rule 3: the overall floodmax conqueror.
        return max(self.max_log)

    @property
    def idle(self) -> bool:
        return self.head is not None


def run_maxmin_clustering(udg: UnitDiskGraph, d: int = 2) -> MaxMinOutcome:
    """Run max-min d-clustering on ``udg``."""
    if d < 1:
        raise ValueError("d must be at least 1")
    net = SyncNetwork(
        udg,
        lambda node_id, _net: MaxMinProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            d,
        ),
    )
    rounds = net.run(max_rounds=2 * d + 8)
    head_of = {}
    heads = set()
    for proc in net.processes:
        head = proc.head  # type: ignore[attr-defined]
        assert head is not None
        head_of[proc.node_id] = head
    # A node elected by anyone is a clusterhead; heads head themselves.
    heads = set(head_of.values())
    for h in heads:
        head_of[h] = h
    return MaxMinOutcome(
        d=d,
        clusterheads=frozenset(heads),
        head_of=head_of,
        rounds=rounds,
        stats=net.stats,
    )
