"""Energy accounting for protocol runs.

Converts a :class:`~repro.sim.stats.MessageStats` ledger into energy
under the paper's model: each broadcast costs the sender
``radius ** alpha`` (every node transmits at the common range), and
each reception costs a fixed per-frame amount — the overhead the paper
notes it ignores for the theory, made explicit here so the
construction-cost comparisons can be stated in energy rather than
message counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.power import MAX_ALPHA, MIN_ALPHA
from repro.graphs.udg import UnitDiskGraph
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class EnergyReport:
    """Energy spent by a protocol run."""

    alpha: float
    tx_unit: float
    rx_unit: float
    per_node: Mapping[int, float]

    @property
    def total(self) -> float:
        return sum(self.per_node.values())

    @property
    def max_node(self) -> float:
        return max(self.per_node.values(), default=0.0)

    def node(self, node_id: int) -> float:
        return self.per_node.get(node_id, 0.0)


def protocol_energy(
    stats: MessageStats,
    udg: UnitDiskGraph,
    *,
    alpha: float = 2.0,
    rx_cost_fraction: float = 0.1,
) -> EnergyReport:
    """Energy of a protocol run over ``udg``.

    Transmission energy per broadcast is ``radius ** alpha``;
    reception energy per delivered frame is ``rx_cost_fraction`` of
    that (receivers decode every frame their neighbors send in the
    broadcast medium).  Energy is attributed to the node that spends
    it: senders pay for their transmissions, receivers for their
    neighbors' transmissions.
    """
    if not MIN_ALPHA <= alpha <= MAX_ALPHA:
        raise ValueError(
            f"alpha={alpha} outside the model range [{MIN_ALPHA}, {MAX_ALPHA}]"
        )
    if rx_cost_fraction < 0.0:
        raise ValueError("rx_cost_fraction must be non-negative")
    tx_unit = udg.radius**alpha
    rx_unit = rx_cost_fraction * tx_unit

    per_node: dict[int, float] = {node: 0.0 for node in udg.nodes()}
    for node, sent in stats.per_node.items():
        per_node[node] = per_node.get(node, 0.0) + sent * tx_unit
        # Each broadcast is decoded by every radio neighbor.
        for neighbor in udg.neighbors(node):
            per_node[neighbor] = per_node.get(neighbor, 0.0) + sent * rx_unit
    return EnergyReport(
        alpha=alpha, tx_unit=tx_unit, rx_unit=rx_unit, per_node=per_node
    )
