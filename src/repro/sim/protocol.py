"""Node-process base class for the synchronous protocols.

A :class:`NodeProcess` owns one node's local state.  Its lifecycle:

1. :meth:`start` — round 0, before any delivery; send opening
   broadcasts.
2. each later round: :meth:`receive` once per message delivered this
   round, then :meth:`finish_round` once — the place to act on the
   round's accumulated information.
3. the network stops when a round passes with no messages in flight
   and every process reports :attr:`idle`.

Processes *only* see: their own id and position, the ids (and, after a
``Hello``/``Location`` exchange, positions) of their 1-hop neighbors,
and received messages — the locality discipline the paper's
"localized algorithm" definition demands.  Nothing here peeks at the
global graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.geometry.primitives import Point
from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import SyncNetwork


class NodeProcess:
    """Base class: one protocol participant."""

    def __init__(self, node_id: int, position: Point, neighbor_ids: tuple[int, ...]) -> None:
        self.node_id = node_id
        self.position = position
        self.neighbor_ids = neighbor_ids
        self._network: "SyncNetwork | None" = None

    # -- wiring (called by the network) --------------------------------

    def attach(self, network: "SyncNetwork") -> None:
        self._network = network

    # -- actions --------------------------------------------------------

    def broadcast(self, kind: str, **payload: Any) -> None:
        """Send one omni-directional broadcast to all 1-hop neighbors."""
        if self._network is None:
            raise RuntimeError("process is not attached to a network")
        self._network.submit(Message(kind=kind, sender=self.node_id, payload=payload))

    # -- lifecycle hooks (override in subclasses) ------------------------

    def start(self) -> None:
        """Round 0: send opening broadcasts."""

    def receive(self, message: Message) -> None:
        """Handle one delivered message."""

    def finish_round(self, round_index: int) -> None:
        """Act on everything delivered this round."""

    @property
    def idle(self) -> bool:
        """Whether this process has nothing more to do.

        The network terminates when all processes are idle *and* no
        message is in flight.  Default: always idle (purely reactive
        process).
        """
        return True
