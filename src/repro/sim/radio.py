"""The unit-disk broadcast radio.

One transmission by node ``u`` is received by every UDG neighbor of
``u`` — the omni-directional antenna model of the paper.  The radio
optionally drops receptions at a configurable rate, which the
failure-injection tests use to check that the protocols degrade
gracefully rather than deadlock.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import Message


class BroadcastRadio:
    """Delivers broadcasts along UDG links, in deterministic order."""

    def __init__(
        self,
        udg: UnitDiskGraph,
        *,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.udg = udg
        self.loss_rate = loss_rate
        self._rng = rng or random.Random(0)
        # Neighbor lists frozen and sorted once: delivery order must be
        # deterministic for reproducible runs.
        self._neighbors: list[tuple[int, ...]] = [
            tuple(sorted(udg.neighbors(u))) for u in udg.nodes()
        ]

    def neighbors_of(self, u: int) -> tuple[int, ...]:
        return self._neighbors[u]

    def deliver(self, message: Message) -> Sequence[tuple[int, Message]]:
        """Receivers of ``message``: (recipient, message) pairs.

        With a nonzero ``loss_rate`` each individual reception is
        dropped independently (broadcasts are not acknowledged in the
        paper's model, so losses are per-receiver).
        """
        recipients = self._neighbors[message.sender]
        if self.loss_rate == 0.0:
            return [(v, message) for v in recipients]
        return [
            (v, message)
            for v in recipients
            if self._rng.random() >= self.loss_rate
        ]
