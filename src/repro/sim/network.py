"""The synchronous-round network driver.

Semantics: messages submitted during round ``t`` (including round 0's
:meth:`~repro.sim.protocol.NodeProcess.start`) are delivered at the
beginning of round ``t + 1``; after all deliveries of a round, every
process gets one :meth:`~repro.sim.protocol.NodeProcess.finish_round`
call.  Processing order is by node id and submission order, so runs
are bit-for-bit reproducible.

The driver also owns the :class:`~repro.sim.stats.MessageStats`
ledger: every submitted broadcast is charged to its sender at submit
time (a lossy radio still costs the sender its transmission).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import Message
from repro.sim.protocol import NodeProcess
from repro.sim.radio import BroadcastRadio
from repro.sim.stats import MessageStats
from repro.sim.trace import TraceRecorder

ProcessFactory = Callable[[int, "SyncNetwork"], NodeProcess]


class SyncNetwork:
    """Runs a set of :class:`NodeProcess` instances in lock-step rounds."""

    def __init__(
        self,
        udg: UnitDiskGraph,
        process_factory: ProcessFactory,
        *,
        radio: BroadcastRadio | None = None,
        stats: MessageStats | None = None,
        trace: "TraceRecorder | None" = None,
    ) -> None:
        self.udg = udg
        self.radio = radio or BroadcastRadio(udg)
        self.stats = stats or MessageStats()
        self.trace = trace
        self.round_index = 0
        self._outgoing: list[Message] = []
        #: Every message ever submitted, in order — the raw record the
        #: path-reconstruction and debugging tools read.
        self.sent_log: list[Message] = []
        self.processes: list[NodeProcess] = []
        for node_id in range(udg.node_count):
            proc = process_factory(node_id, self)
            proc.attach(self)
            self.processes.append(proc)

    # -- API used by processes ------------------------------------------

    def submit(self, message: Message) -> None:
        """Queue a broadcast for delivery next round (charged now)."""
        self.stats.record(message.sender, message.kind)
        self._outgoing.append(message)
        self.sent_log.append(message)

    def neighbors_of(self, u: int) -> tuple[int, ...]:
        return self.radio.neighbors_of(u)

    # -- driving ----------------------------------------------------------

    def run(self, *, max_rounds: int = 10_000) -> int:
        """Run to quiescence; returns the number of rounds executed.

        Quiescence: a round completes with no message submitted and
        every process idle.  Raises :class:`RuntimeError` at
        ``max_rounds`` — protocols in this library terminate in O(n)
        rounds, so hitting the bound indicates a bug, not a slow run.
        """
        for proc in self.processes:
            proc.start()
        while True:
            in_flight = self._outgoing
            self._outgoing = []
            if not in_flight and all(p.idle for p in self.processes):
                return self.round_index
            self.round_index += 1
            if self.round_index > max_rounds:
                raise RuntimeError(
                    f"protocol did not quiesce within {max_rounds} rounds"
                )
            deliveries: list[tuple[int, Message]] = []
            for message in in_flight:
                delivered = self.radio.deliver(message)
                if self.trace is not None:
                    self.trace.record(
                        self.round_index, message, (r for r, _m in delivered)
                    )
                deliveries.extend(delivered)
            # Deterministic processing: by recipient id, then by the
            # order the messages were submitted.
            deliveries.sort(key=lambda pair: pair[0])
            for recipient, message in deliveries:
                self.processes[recipient].receive(message)
            for proc in self.processes:
                proc.finish_round(self.round_index)

    # -- inspection --------------------------------------------------------

    def process_states(self) -> Sequence[NodeProcess]:
        return tuple(self.processes)
