"""Reliability over lossy radios: blind retransmission with dedup.

The paper's protocols assume reliable broadcast; real radios drop
frames.  The classic cheap fix — send every frame ``copies`` times,
receivers de-duplicate — turns a per-reception loss rate ``p`` into
``p ** copies``, at a proportional energy cost.  This module wraps any
:class:`~repro.sim.protocol.NodeProcess` factory so the protocol logic
stays untouched: outgoing broadcasts are replicated with a sequence
number, incoming duplicates are suppressed before the wrapped process
sees them.

The failure-injection tests run the clustering election over radios
dropping 20-30% of receptions and show it completing correctly with
``copies=3`` where the unprotected protocol stalls.
"""

from __future__ import annotations

import itertools

from repro.sim.messages import Message
from repro.sim.network import ProcessFactory, SyncNetwork
from repro.sim.protocol import NodeProcess

_SEQ_KEY = "_rel_seq"
_COPY_KEY = "_rel_copy"


class ReliableProcess(NodeProcess):
    """Wraps an inner process with retransmission and dedup."""

    def __init__(self, inner: NodeProcess, copies: int) -> None:
        super().__init__(inner.node_id, inner.position, inner.neighbor_ids)
        if copies < 1:
            raise ValueError("copies must be at least 1")
        self.inner = inner
        self.copies = copies
        self._sequence = itertools.count()
        self._seen: set[tuple[int, int]] = set()
        # The inner process must broadcast *through us*.
        inner.broadcast = self._relay_broadcast  # type: ignore[method-assign]

    def _relay_broadcast(self, kind: str, **payload) -> None:
        seq = next(self._sequence)
        for copy in range(self.copies):
            super().broadcast(kind, **payload, **{_SEQ_KEY: seq, _COPY_KEY: copy})

    # -- lifecycle forwarding ---------------------------------------------

    def attach(self, network: SyncNetwork) -> None:  # noqa: D102
        super().attach(network)

    def start(self) -> None:  # noqa: D102
        self.inner.start()

    def receive(self, message: Message) -> None:  # noqa: D102
        seq = message.get(_SEQ_KEY)
        if seq is not None:
            key = (message.sender, seq)
            if key in self._seen:
                return
            self._seen.add(key)
            payload = {
                k: v
                for k, v in message.payload.items()
                if k not in (_SEQ_KEY, _COPY_KEY)
            }
            message = Message(
                kind=message.kind, sender=message.sender, payload=payload
            )
        self.inner.receive(message)

    def finish_round(self, round_index: int) -> None:  # noqa: D102
        self.inner.finish_round(round_index)

    @property
    def idle(self) -> bool:  # noqa: D102
        return self.inner.idle


def with_retransmissions(
    factory: ProcessFactory, copies: int
) -> ProcessFactory:
    """Wrap a process factory so every broadcast is sent ``copies`` times."""

    def wrapped(node_id: int, network: SyncNetwork) -> NodeProcess:
        return ReliableProcess(factory(node_id, network), copies)

    return wrapped
