"""Protocol execution tracing.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.network.SyncNetwork`
captures every broadcast with its round, sender and delivery fan-out,
and renders a per-round timeline — the tool for answering "why did
node 17 claim that connector?" without print-debugging a distributed
run.  Recording is opt-in and zero-cost when absent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.messages import Message


@dataclass(frozen=True)
class TraceEvent:
    """One recorded broadcast."""

    round_index: int
    sender: int
    kind: str
    payload_summary: str
    recipients: tuple[int, ...]


@dataclass
class TraceRecorder:
    """Collects :class:`TraceEvent` objects during a network run."""

    events: list[TraceEvent] = field(default_factory=list)
    #: Optionally restrict recording to these message kinds.
    kinds: Optional[frozenset[str]] = None
    #: Optionally restrict recording to these sender ids.
    senders: Optional[frozenset[int]] = None

    def record(
        self, round_index: int, message: Message, recipients: Iterable[int]
    ) -> None:
        if self.kinds is not None and message.kind not in self.kinds:
            return
        if self.senders is not None and message.sender not in self.senders:
            return
        summary = ", ".join(
            f"{key}={_short(value)}" for key, value in sorted(message.payload.items())
        )
        self.events.append(
            TraceEvent(
                round_index=round_index,
                sender=message.sender,
                kind=message.kind,
                payload_summary=summary,
                recipients=tuple(sorted(recipients)),
            )
        )

    # -- analysis -------------------------------------------------------

    def events_of(self, node: int) -> list[TraceEvent]:
        """Broadcasts sent by ``node``."""
        return [e for e in self.events if e.sender == node]

    def rounds(self) -> dict[int, list[TraceEvent]]:
        """Events grouped by round."""
        grouped: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.round_index, []).append(event)
        return grouped

    def kind_counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def timeline(self, *, max_events_per_round: int = 20) -> str:
        """Human-readable per-round rendering of the trace."""
        lines: list[str] = []
        for round_index, events in sorted(self.rounds().items()):
            lines.append(f"round {round_index} ({len(events)} broadcasts)")
            for event in events[:max_events_per_round]:
                payload = f" {{{event.payload_summary}}}" if event.payload_summary else ""
                lines.append(
                    f"  {event.sender:>4} -> {len(event.recipients)} nbrs: "
                    f"{event.kind}{payload}"
                )
            hidden = len(events) - max_events_per_round
            if hidden > 0:
                lines.append(f"  ... {hidden} more")
        return "\n".join(lines) if lines else "(empty trace)"


def _short(value: object, limit: int = 40) -> str:
    text = repr(value)
    if len(text) > limit:
        return text[: limit - 3] + "..."
    return text
