"""Asynchronous event-driven network simulation.

The synchronous driver (:mod:`repro.sim.network`) models the lockstep
rounds the paper's pseudo-code assumes.  The paper also claims the
protocols run **asynchronously** "if the number of neighbors of each
node is known a priori"; this module provides the substrate to test
that claim: broadcasts arrive at each receiver after an independent
random delay drawn from a seeded latency model, processed in timestamp
order from a single event queue.

Determinism: given the same seed, runs are bit-for-bit reproducible —
ties in delivery time break by submission order.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import Message
from repro.sim.stats import MessageStats


@dataclass(frozen=True)
class LatencyModel:
    """Per-delivery latency: uniform in [min_delay, max_delay]."""

    min_delay: float = 0.1
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.min_delay <= self.max_delay:
            raise ValueError("need 0 < min_delay <= max_delay")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.min_delay, self.max_delay)


class AsyncNodeProcess:
    """Base class for asynchronous protocol participants.

    Unlike the synchronous :class:`~repro.sim.protocol.NodeProcess`,
    there are no rounds: a process acts inside :meth:`start` and
    :meth:`receive` only.  Each process knows its neighbor *count* up
    front — the paper's stated precondition for asynchrony.
    """

    def __init__(self, node_id: int, position: Point, neighbor_ids: tuple[int, ...]) -> None:
        self.node_id = node_id
        self.position = position
        self.neighbor_ids = neighbor_ids
        self._network: "AsyncNetwork | None" = None

    def attach(self, network: "AsyncNetwork") -> None:
        self._network = network

    def broadcast(self, kind: str, **payload: Any) -> None:
        if self._network is None:
            raise RuntimeError("process is not attached to a network")
        self._network.submit(Message(kind=kind, sender=self.node_id, payload=payload))

    def start(self) -> None:
        """Called once at time zero."""

    def receive(self, message: Message) -> None:
        """Called once per delivered message, in timestamp order."""


AsyncProcessFactory = Callable[[int, "AsyncNetwork"], AsyncNodeProcess]


class AsyncNetwork:
    """Event-driven driver: a global clock and a delivery queue."""

    def __init__(
        self,
        udg: UnitDiskGraph,
        process_factory: AsyncProcessFactory,
        *,
        latency: LatencyModel | None = None,
        seed: int = 0,
        stats: MessageStats | None = None,
    ) -> None:
        self.udg = udg
        self.latency = latency or LatencyModel()
        self.stats = stats or MessageStats()
        self._rng = random.Random(seed)
        self.clock = 0.0
        self._sequence = itertools.count()
        #: (delivery_time, tiebreak, recipient, message)
        self._queue: list[tuple[float, int, int, Message]] = []
        self._neighbors: list[tuple[int, ...]] = [
            tuple(sorted(udg.neighbors(u))) for u in udg.nodes()
        ]
        self.delivered_count = 0
        self.processes: list[AsyncNodeProcess] = []
        for node_id in range(udg.node_count):
            proc = process_factory(node_id, self)
            proc.attach(self)
            self.processes.append(proc)

    def submit(self, message: Message) -> None:
        """Broadcast: schedule one delivery per neighbor, charged now."""
        self.stats.record(message.sender, message.kind)
        for recipient in self._neighbors[message.sender]:
            delay = self.latency.sample(self._rng)
            heapq.heappush(
                self._queue,
                (self.clock + delay, next(self._sequence), recipient, message),
            )

    def run(self, *, max_events: int = 1_000_000) -> float:
        """Drain the event queue; returns the final clock value.

        Terminates when no deliveries remain (quiescence is trivial to
        detect with a single queue).  ``max_events`` guards against
        protocols that never stop chattering.
        """
        for proc in self.processes:
            proc.start()
        events = 0
        while self._queue:
            events += 1
            if events > max_events:
                raise RuntimeError(
                    f"async protocol still chattering after {max_events} events"
                )
            time, _seq, recipient, message = heapq.heappop(self._queue)
            self.clock = time
            self.delivered_count += 1
            self.processes[recipient].receive(message)
        return self.clock
