"""Synchronous message-passing simulator over the unit-disk radio model.

The paper's headline cost claim — every node sends only a *constant*
number of messages to build the backbone — is an accounting statement
about broadcasts.  This package provides the substrate that makes the
claim measurable: node processes (:mod:`~repro.sim.protocol`) exchange
broadcast messages (:mod:`~repro.sim.messages`) through a unit-disk
radio (:mod:`~repro.sim.radio`) driven in synchronous rounds
(:mod:`~repro.sim.network`), with per-node, per-kind send counters
(:mod:`~repro.sim.stats`).
"""

from repro.sim.messages import Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.radio import BroadcastRadio
from repro.sim.stats import MessageStats
from repro.sim.events import AsyncNetwork, AsyncNodeProcess, LatencyModel
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.sim.energy import EnergyReport, protocol_energy
from repro.sim.reliable import ReliableProcess, with_retransmissions

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "EnergyReport",
    "protocol_energy",
    "ReliableProcess",
    "with_retransmissions",
    "Message",
    "SyncNetwork",
    "NodeProcess",
    "BroadcastRadio",
    "MessageStats",
    "AsyncNetwork",
    "AsyncNodeProcess",
    "LatencyModel",
]
