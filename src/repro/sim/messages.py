"""Broadcast messages exchanged by the distributed protocols.

A message is a ``kind`` (the paper's message names: ``IamDominator``,
``IamDominatee``, ``TryConnector``, ``IamConnector``, ``Proposal``,
``Accept``, ``Reject``, ...) plus an immutable payload.  One
:class:`Message` object models one omni-directional broadcast — every
UDG neighbor of the sender receives the same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

# Canonical message kinds used across the protocols.  Collected here so
# benchmark output and tests spell them identically.
HELLO = "Hello"
IAM_DOMINATOR = "IamDominator"
IAM_DOMINATEE = "IamDominatee"
TRY_CONNECTOR = "TryConnector"
IAM_CONNECTOR = "IamConnector"
STATUS = "Status"
LOCATION = "Location"
PROPOSAL = "Proposal"
ACCEPT = "Accept"
REJECT = "Reject"
STRUCTURE = "Structure"
KEPT = "Kept"


@dataclass(frozen=True)
class Message:
    """One broadcast: its kind, sender id, and read-only payload."""

    kind: str
    sender: int
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)
