"""Per-node, per-kind message accounting.

The experiments report the maximum and average number of messages a
node sends while constructing each structure (paper Figs. 10 and 12);
:class:`MessageStats` is the ledger they read from.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass
class MessageStats:
    """Counts of broadcasts sent, by node and by message kind."""

    per_node: Counter = field(default_factory=Counter)
    per_kind: Counter = field(default_factory=Counter)
    per_node_kind: Counter = field(default_factory=Counter)

    def record(self, node: int, kind: str, count: int = 1) -> None:
        """Charge ``count`` broadcasts of ``kind`` to ``node``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.per_node[node] += count
        self.per_kind[kind] += count
        self.per_node_kind[(node, kind)] += count

    def merge(self, other: "MessageStats") -> "MessageStats":
        """Accumulate another ledger into this one (returns self)."""
        self.per_node.update(other.per_node)
        self.per_kind.update(other.per_kind)
        self.per_node_kind.update(other.per_node_kind)
        return self

    def copy(self) -> "MessageStats":
        """Independent deep copy of the ledger."""
        out = MessageStats()
        return out.merge(self)

    @property
    def total(self) -> int:
        return sum(self.per_kind.values())

    def node_total(self, node: int) -> int:
        """Broadcasts sent by ``node`` (0 if it never sent)."""
        return self.per_node.get(node, 0)

    def max_per_node(self, nodes: Iterable[int] | None = None) -> int:
        """Largest per-node send count (over ``nodes`` if given)."""
        if nodes is not None:
            return max((self.per_node.get(n, 0) for n in nodes), default=0)
        return max(self.per_node.values(), default=0)

    def avg_per_node(self, node_count: int | None = None) -> float:
        """Average sends per node.

        ``node_count`` should be the number of *participating* nodes
        (silent nodes count as zero senders); defaults to the number of
        nodes that sent at least one message.
        """
        n = node_count if node_count is not None else len(self.per_node)
        if n <= 0:
            return 0.0
        return self.total / n

    def by_kind(self) -> Mapping[str, int]:
        """Total sends per message kind."""
        return dict(self.per_kind)
