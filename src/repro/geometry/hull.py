"""Convex hull via Andrew's monotone chain.

Used by the Delaunay triangulation tests (hull edges are Delaunay
edges) and by the workload generators (to measure deployment spread).
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.predicates import orientation_value
from repro.geometry.primitives import Point


def convex_hull(points: Sequence[Point]) -> list[Point]:
    """Convex hull of ``points`` in counter-clockwise order.

    Collinear points on the hull boundary are dropped; duplicated
    input points are collapsed.  For fewer than three distinct points
    the distinct points themselves are returned (sorted).
    """
    unique = sorted(set(points))
    if len(unique) <= 2:
        return unique

    def half_chain(pts: Sequence[Point]) -> list[Point]:
        chain: list[Point] = []
        for p in pts:
            while (
                len(chain) >= 2
                and orientation_value(chain[-2], chain[-1], p) <= 0.0
            ):
                chain.pop()
            chain.append(p)
        return chain

    lower = half_chain(unique)
    upper = half_chain(list(reversed(unique)))
    return lower[:-1] + upper[:-1]
