"""Rigid motions and similarity transforms on point sets.

Two uses: workload augmentation (rotate/mirror a deployment to get a
geometrically distinct but statistically identical instance) and
*invariance testing* — every structure in this library is defined by
distances and angles, so it must be equivariant under rigid motions
and uniform scalings.  The property suite rebuilds structures on
transformed deployments and asserts edge sets map exactly; a failure
pinpoints hidden coordinate dependence (e.g. an axis-aligned tolerance).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.primitives import Point


def translate(points: Sequence[Point], dx: float, dy: float) -> list[Point]:
    """Translate every point by ``(dx, dy)``."""
    return [Point(p.x + dx, p.y + dy) for p in points]


def rotate(
    points: Sequence[Point], angle: float, *, about: Point = Point(0.0, 0.0)
) -> list[Point]:
    """Rotate every point by ``angle`` radians about ``about``."""
    cos_a = math.cos(angle)
    sin_a = math.sin(angle)
    out = []
    for p in points:
        dx = p.x - about.x
        dy = p.y - about.y
        out.append(
            Point(
                about.x + dx * cos_a - dy * sin_a,
                about.y + dx * sin_a + dy * cos_a,
            )
        )
    return out


def scale(
    points: Sequence[Point], factor: float, *, about: Point = Point(0.0, 0.0)
) -> list[Point]:
    """Uniformly scale every point by ``factor`` about ``about``."""
    if factor <= 0.0:
        raise ValueError("scale factor must be positive")
    return [
        Point(
            about.x + (p.x - about.x) * factor,
            about.y + (p.y - about.y) * factor,
        )
        for p in points
    ]


def mirror_x(points: Sequence[Point], *, axis_y: float = 0.0) -> list[Point]:
    """Reflect every point across the horizontal line ``y = axis_y``."""
    return [Point(p.x, 2.0 * axis_y - p.y) for p in points]


def normalize_to_unit_square(points: Sequence[Point]) -> list[Point]:
    """Map the bounding box of ``points`` into ``[0, 1]^2`` (aspect kept).

    Useful for radius-normalized comparisons across deployments of
    different physical extents.  Degenerate inputs (all points equal)
    map to the origin.
    """
    if not points:
        return []
    min_x = min(p.x for p in points)
    min_y = min(p.y for p in points)
    span = max(
        max(p.x for p in points) - min_x,
        max(p.y for p in points) - min_y,
    )
    if span == 0.0:
        return [Point(0.0, 0.0) for _ in points]
    return [Point((p.x - min_x) / span, (p.y - min_y) / span) for p in points]
