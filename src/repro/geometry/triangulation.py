"""From-scratch Delaunay triangulation (Bowyer–Watson, adaptively exact).

The localized Delaunay construction (paper Algorithm 2) has every node
compute the Delaunay triangulation of its 1-hop neighborhood, so the
triangulator is called once per node on a few dozen points.  The
incremental Bowyer–Watson scheme here is O(m^2) per call, which is far
below the cost of anything else in the pipeline at those sizes, and is
cross-validated against :mod:`scipy.spatial` in the test suite.

Robustness: the cavity in-circle test is **adaptively exact** — the
fast float determinant decides whenever its magnitude exceeds a
conservative rounding-error bound, and borderline cases are recomputed
with :class:`fractions.Fraction` (exact for any float input).  That is
what keeps degenerate inputs correct: collinear runs of points, exact
cocircular quadruples (grid deployments are full of both), and points
landing exactly on existing edges.  Exactly-cocircular point sets are
re-triangulated with an arbitrary but deterministic diagonal.

Degenerate inputs are handled explicitly:

* fewer than three points, or all points collinear, yield a
  triangulation with no triangles whose edge set is the path along the
  sorted points (the limit object of the Delaunay graph);
* duplicate points are collapsed before triangulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.geometry.predicates import Orientation, orientation, orientation_value
from repro.geometry.primitives import Point


@dataclass
class Triangulation:
    """Result of :func:`delaunay`.

    ``triangles`` hold indices into ``points`` as sorted triples, and
    ``edges`` as sorted pairs.  Indices refer to the *input* point
    sequence, including duplicates (only the first occurrence of a
    duplicated coordinate appears in the output structures).
    """

    points: list[Point]
    triangles: list[tuple[int, int, int]] = field(default_factory=list)
    edges: set[tuple[int, int]] = field(default_factory=set)

    def adjacency(self) -> dict[int, set[int]]:
        """Adjacency map of the triangulation's edge set."""
        adj: dict[int, set[int]] = {i: set() for i in range(len(self.points))}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def triangles_of(self, vertex: int) -> list[tuple[int, int, int]]:
        """All triangles incident on ``vertex``."""
        return [t for t in self.triangles if vertex in t]


def _sign(value: float) -> int:
    if value > 0.0:
        return 1
    if value < 0.0:
        return -1
    return 0


def _orient_sign_exact(a: Point, b: Point, c: Point) -> int:
    """Exact sign of the orientation determinant (Fraction arithmetic)."""
    ax, ay = Fraction(a[0]), Fraction(a[1])
    bx, by = Fraction(b[0]), Fraction(b[1])
    cx, cy = Fraction(c[0]), Fraction(c[1])
    det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    return _sign(det)


def _incircle_sign_exact(a: Point, b: Point, c: Point, d: Point) -> int:
    """Exact sign of the in-circle determinant (Fraction arithmetic)."""
    adx = Fraction(a[0]) - Fraction(d[0])
    ady = Fraction(a[1]) - Fraction(d[1])
    bdx = Fraction(b[0]) - Fraction(d[0])
    bdy = Fraction(b[1]) - Fraction(d[1])
    cdx = Fraction(c[0]) - Fraction(d[0])
    cdy = Fraction(c[1]) - Fraction(d[1])
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    return _sign(det)


def _orient_sign(a: Point, b: Point, c: Point) -> int:
    """Sign of orientation(a, b, c), exact on borderline magnitudes."""
    det = orientation_value(a, b, c)
    scale = max(
        abs(b[0] - a[0]), abs(b[1] - a[1]),
        abs(c[0] - a[0]), abs(c[1] - a[1]),
        1e-300,
    )
    if abs(det) > 1e-12 * scale * scale:
        return _sign(det)
    return _orient_sign_exact(a, b, c)


def _in_circumcircle(a: Point, b: Point, c: Point, d: Point) -> bool:
    """Whether ``d`` is inside (or exactly on) the circumcircle of ``abc``.

    Boundary-inclusive on purpose: a point exactly on an existing edge
    or cocircular with a triangle must open every adjacent triangle so
    the Bowyer–Watson cavity stays correct.  The float determinant
    decides when it exceeds a forward-error bound (the summed term
    magnitudes scaled by a safe multiple of machine epsilon); only
    borderline cases pay for exact arithmetic.
    """
    orient = _orient_sign(a, b, c)
    if orient == 0:
        return False  # degenerate triangle: no interior
    adx = a[0] - d[0]
    ady = a[1] - d[1]
    bdx = b[0] - d[0]
    bdy = b[1] - d[1]
    cdx = c[0] - d[0]
    cdy = c[1] - d[1]
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    magnitude = (
        abs(adx) * (abs(bdy) * cd2 + abs(cdy) * bd2)
        + abs(ady) * (abs(bdx) * cd2 + abs(cdx) * bd2)
        + ad2 * (abs(bdx) * abs(cdy) + abs(cdx) * abs(bdy))
    )
    if abs(det) > 1e-13 * magnitude:
        det_sign = _sign(det)
    else:
        det_sign = _incircle_sign_exact(a, b, c, d)
    if det_sign == 0:
        return True  # exactly cocircular: boundary-inclusive
    return det_sign == orient


def _collinear_path(points: Sequence[Point], index_of: dict[Point, int]) -> Triangulation:
    """Degenerate triangulation for collinear input: a sorted path."""
    tri = Triangulation(points=list(points))
    ordered = sorted(index_of, key=lambda p: (p[0], p[1]))
    for a, b in zip(ordered, ordered[1:]):
        i, j = index_of[a], index_of[b]
        tri.edges.add((min(i, j), max(i, j)))
    return tri


def delaunay(points: Sequence[Point]) -> Triangulation:
    """Delaunay triangulation of ``points``.

    Correct for degenerate inputs (collinear runs, cocircular
    quadruples) thanks to the adaptively exact predicates; cocircular
    ties are broken deterministically.
    """
    pts = [Point(float(p[0]), float(p[1])) for p in points]
    index_of: dict[Point, int] = {}
    for i, p in enumerate(pts):
        index_of.setdefault(p, i)
    distinct = list(index_of.keys())

    if len(distinct) < 3:
        return _collinear_path(pts, index_of)

    if all(
        orientation(distinct[0], distinct[1], p) == Orientation.COLLINEAR
        for p in distinct[2:]
    ):
        return _collinear_path(pts, index_of)

    # Super-triangle enclosing every input point.  The margin must
    # exceed the circumradius of any true Delaunay triangle, or that
    # triangle's circumcircle swallows a super vertex and the triangle
    # is wrongly dropped; 1e9 x span tolerates hull slivers down to
    # ~1e-9 relative flatness, and the adaptively exact predicates
    # stay correct at any magnitude (Fraction arithmetic is exact).
    min_x = min(p[0] for p in distinct)
    max_x = max(p[0] for p in distinct)
    min_y = min(p[1] for p in distinct)
    max_y = max(p[1] for p in distinct)
    span = max(max_x - min_x, max_y - min_y, 1.0)
    cx = (min_x + max_x) / 2.0
    cy = (min_y + max_y) / 2.0
    margin = 1e9 * span
    super_pts = [
        Point(cx - margin, cy - margin / 2.0),
        Point(cx + margin, cy - margin / 2.0),
        Point(cx, cy + margin),
    ]

    verts: list[Point] = distinct + super_pts
    s0 = len(distinct)

    triangles: list[tuple[int, int, int]] = [(s0, s0 + 1, s0 + 2)]

    for vi in range(len(distinct)):
        vp = verts[vi]
        bad: list[tuple[int, int, int]] = []
        good: list[tuple[int, int, int]] = []
        for tri in triangles:
            if _in_circumcircle(verts[tri[0]], verts[tri[1]], verts[tri[2]], vp):
                bad.append(tri)
            else:
                good.append(tri)
        if not bad:  # pragma: no cover - exact predicates locate every point
            raise RuntimeError("Bowyer-Watson cavity is empty; input corrupt")

        # Boundary of the cavity: edges that belong to exactly one bad
        # triangle.
        edge_count: dict[tuple[int, int], int] = {}
        for i, j, k in bad:
            for a, b in ((i, j), (j, k), (i, k)):
                key = (min(a, b), max(a, b))
                edge_count[key] = edge_count.get(key, 0) + 1
        boundary = [e for e, count in edge_count.items() if count == 1]

        triangles = good
        for a, b in boundary:
            if _orient_sign(verts[a], verts[b], vp) == 0:
                continue  # vp collinear with the edge: no triangle
            triangles.append(tuple(sorted((a, b, vi))))  # type: ignore[arg-type]

    result = Triangulation(points=pts)
    seen: set[tuple[int, int, int]] = set()
    for i, j, k in triangles:
        if i >= s0 or j >= s0 or k >= s0:
            continue  # touches the super-triangle
        # Map back to original input indices (identity for distinct points).
        tri_ids = tuple(sorted((index_of[verts[i]], index_of[verts[j]], index_of[verts[k]])))
        if tri_ids in seen:
            continue
        seen.add(tri_ids)
        result.triangles.append(tri_ids)  # type: ignore[arg-type]
        for a, b in ((tri_ids[0], tri_ids[1]), (tri_ids[1], tri_ids[2]), (tri_ids[0], tri_ids[2])):
            result.edges.add((a, b))
    return result
