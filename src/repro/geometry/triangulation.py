"""From-scratch Delaunay triangulation (Bowyer–Watson, adaptively exact).

The localized Delaunay construction (paper Algorithm 2) has every node
compute the Delaunay triangulation of its 1-hop neighborhood, so the
triangulator is called once per node on a few dozen points.  The
incremental Bowyer–Watson scheme here is O(m^2) per call, which is far
below the cost of anything else in the pipeline at those sizes, and is
cross-validated against :mod:`scipy.spatial` in the test suite.

Robustness: the cavity in-circle test is **adaptively exact** — the
fast float determinant decides whenever its magnitude exceeds a
conservative rounding-error bound, and borderline cases are recomputed
with :class:`fractions.Fraction` (exact for any float input).  That is
what keeps degenerate inputs correct: collinear runs of points, exact
cocircular quadruples (grid deployments are full of both), and points
landing exactly on existing edges.  Exactly-cocircular point sets are
re-triangulated with an arbitrary but deterministic diagonal.

Degenerate inputs are handled explicitly:

* fewer than three points, or all points collinear, yield a
  triangulation with no triangles whose edge set is the path along the
  sorted points (the limit object of the Delaunay graph);
* duplicate points are collapsed before triangulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.geometry.predicates import Orientation, orientation, orientation_value
from repro.geometry.primitives import Point


@dataclass
class Triangulation:
    """Result of :func:`delaunay`.

    ``triangles`` hold indices into ``points`` as sorted triples, and
    ``edges`` as sorted pairs.  Indices refer to the *input* point
    sequence, including duplicates (only the first occurrence of a
    duplicated coordinate appears in the output structures).
    """

    points: list[Point]
    triangles: list[tuple[int, int, int]] = field(default_factory=list)
    edges: set[tuple[int, int]] = field(default_factory=set)
    _incidence: dict[int, list[tuple[int, int, int]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def adjacency(self) -> dict[int, set[int]]:
        """Adjacency map of the triangulation's edge set."""
        adj: dict[int, set[int]] = {i: set() for i in range(len(self.points))}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def triangles_of(self, vertex: int) -> list[tuple[int, int, int]]:
        """All triangles incident on ``vertex`` (O(deg) via incidence map).

        The vertex→triangles map is built once on first use and reused;
        callers that probe every vertex (the localized Delaunay
        candidate generation does) pay O(T) total instead of O(V·T).
        """
        if not self._incidence and self.triangles:
            for tri in self.triangles:
                for v in tri:
                    self._incidence.setdefault(v, []).append(tri)
        return list(self._incidence.get(vertex, ()))


def _sign(value: float) -> int:
    if value > 0.0:
        return 1
    if value < 0.0:
        return -1
    return 0


def _orient_sign_exact(a: Point, b: Point, c: Point) -> int:
    """Exact sign of the orientation determinant (Fraction arithmetic)."""
    ax, ay = Fraction(a[0]), Fraction(a[1])
    bx, by = Fraction(b[0]), Fraction(b[1])
    cx, cy = Fraction(c[0]), Fraction(c[1])
    det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    return _sign(det)


def _incircle_sign_exact(a: Point, b: Point, c: Point, d: Point) -> int:
    """Exact sign of the in-circle determinant (Fraction arithmetic)."""
    adx = Fraction(a[0]) - Fraction(d[0])
    ady = Fraction(a[1]) - Fraction(d[1])
    bdx = Fraction(b[0]) - Fraction(d[0])
    bdy = Fraction(b[1]) - Fraction(d[1])
    cdx = Fraction(c[0]) - Fraction(d[0])
    cdy = Fraction(c[1]) - Fraction(d[1])
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    return _sign(det)


def _orient_sign(a: Point, b: Point, c: Point) -> int:
    """Sign of orientation(a, b, c), exact on borderline magnitudes."""
    det = orientation_value(a, b, c)
    scale = max(
        abs(b[0] - a[0]), abs(b[1] - a[1]),
        abs(c[0] - a[0]), abs(c[1] - a[1]),
        1e-300,
    )
    if abs(det) > 1e-12 * scale * scale:
        return _sign(det)
    return _orient_sign_exact(a, b, c)


def _in_circumcircle(a: Point, b: Point, c: Point, d: Point, orient: int | None = None) -> bool:
    """Whether ``d`` is inside (or exactly on) the circumcircle of ``abc``.

    Boundary-inclusive on purpose: a point exactly on an existing edge
    or cocircular with a triangle must open every adjacent triangle so
    the Bowyer–Watson cavity stays correct.  The float determinant
    decides when it exceeds a forward-error bound (the summed term
    magnitudes scaled by a safe multiple of machine epsilon); only
    borderline cases pay for exact arithmetic.

    ``orient`` may carry a precomputed ``_orient_sign(a, b, c)`` — the
    sign is a property of the triangle alone, so callers testing many
    points against one triangle compute it once.
    """
    if orient is None:
        orient = _orient_sign(a, b, c)
    if orient == 0:
        return False  # degenerate triangle: no interior
    adx = a[0] - d[0]
    ady = a[1] - d[1]
    bdx = b[0] - d[0]
    bdy = b[1] - d[1]
    cdx = c[0] - d[0]
    cdy = c[1] - d[1]
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    magnitude = (
        abs(adx) * (abs(bdy) * cd2 + abs(cdy) * bd2)
        + abs(ady) * (abs(bdx) * cd2 + abs(cdx) * bd2)
        + ad2 * (abs(bdx) * abs(cdy) + abs(cdx) * abs(bdy))
    )
    if abs(det) > 1e-13 * magnitude:
        det_sign = _sign(det)
    else:
        det_sign = _incircle_sign_exact(a, b, c, d)
    if det_sign == 0:
        return True  # exactly cocircular: boundary-inclusive
    return det_sign == orient


# The cavity-scan prefilter brackets each circumcircle with an
# uncertainty band derived from the float error of its computed center:
# err(center) ~ eps * lb * lc * (lb + lc) / (2 |det|) for edge scales
# lb, lc and orientation determinant det, which propagates to the
# squared-distance comparison as 2 * r * err(center) + O(eps * r^2).
# The band is that bound inflated by _PREFILTER_SAFETY, so the cheap
# distance test can only ever *defer* to the adaptive exact determinant
# inside the band, never contradict it — the prefilter cannot change
# the output.  Triangles flatter than _PREFILTER_COND skip the
# prefilter entirely (their float circumcenter is meaningless).
_PREFILTER_SAFETY = 1e4
_PREFILTER_COND = 1e-4
_EPS = 2.220446049250313e-16  # 2**-52


def _triangle_record(
    tri: tuple[int, int, int], verts: Sequence[Point]
) -> tuple[tuple[int, int, int], int, float, float, float, float]:
    """Precompute per-triangle data for the cavity scan.

    Returns ``(tri, orient, cx, cy, near, far)``: the cached
    orientation sign plus a float circumcenter with conservative
    inner/outer squared-radius bands.  A candidate point farther than
    ``far`` is certainly outside the circumcircle and one closer than
    ``near`` is certainly inside; only the thin shell between them (and
    every point of an ill-conditioned triangle, flagged ``far < 0``)
    pays for the adaptive exact in-circle test.
    """
    a, b, c = verts[tri[0]], verts[tri[1]], verts[tri[2]]
    # Work in coordinates relative to ``a`` so the conditioning check
    # and the center are immune to a large common offset.  The cross
    # product below is bit-identical to orientation_value(a, b, c), so
    # the cached sign replicates _orient_sign exactly (including its
    # exact-arithmetic fallback band).
    bx, by = b[0] - a[0], b[1] - a[1]
    cx_, cy_ = c[0] - a[0], c[1] - a[1]
    det = bx * cy_ - by * cx_
    abs_det = abs(det)
    abx = abs(bx)
    aby = abs(by)
    lb = abx if abx > aby else aby
    acx = abs(cx_)
    acy = abs(cy_)
    lc = acx if acx > acy else acy
    scale = lb if lb > lc else lc
    if scale < 1e-300:
        scale = 1e-300
    if abs_det > 1e-12 * scale * scale:
        orient = 1 if det > 0.0 else -1
    else:
        orient = _orient_sign_exact(a, b, c)
    if orient == 0:
        # Degenerate triangle: no interior, every point is "outside".
        return (tri, 0, 0.0, 0.0, -1.0, float("inf"))
    # Condition on the *product* of the edge scales, not scale**2: a
    # triangle with one short and one astronomically long edge (every
    # super-triangle neighbor during construction) is perfectly well
    # conditioned when its angles are, and must not lose the prefilter.
    if abs_det <= _PREFILTER_COND * lb * lc:
        # Sliver: float circumcenter too inaccurate, no prefilter.
        return (tri, orient, 0.0, 0.0, -1.0, -1.0)
    d = 2.0 * det
    b2 = bx * bx + by * by
    c2 = cx_ * cx_ + cy_ * cy_
    ux = (cy_ * b2 - by * c2) / d
    uy = (bx * c2 - cx_ * b2) / d
    r_sq = ux * ux + uy * uy
    center_err = _EPS * lb * lc * (lb + lc) / (2.0 * abs_det)
    band = _PREFILTER_SAFETY * (
        2.0 * math.sqrt(r_sq) * center_err + 4.0 * _EPS * r_sq
    )
    return (tri, orient, a[0] + ux, a[1] + uy, r_sq - band, r_sq + band)


# -- batched lockstep Bowyer–Watson (SoA construction core) -------------------
#
# The localized Delaunay candidate generation runs one small Bowyer–
# Watson per node.  The batch below runs *all* of them in lockstep: a
# flat pool of triangle records tagged by owning query, one vectorized
# cavity scan per insertion step t (every query inserts its t-th local
# point simultaneously), vectorized boundary-edge extraction, and
# vectorized creation of the replacement records.
#
# Bit-identity with :func:`delaunay` holds by construction:
#
# * insertion order is the caller's member order (ascending global id,
#   exactly the order ``_node_candidates`` passes to ``delaunay``);
# * every per-record quantity (_triangle_record's orientation sign,
#   circumcenter, near/far bands) is computed with the same float
#   expressions elementwise — numpy float64 arithmetic is IEEE-
#   identical to the scalar code — and ambiguous rows go to the same
#   Fraction-exact predicates;
# * the cavity classification, boundary counting and replacement rule
#   are pure combinatorics on identical predicate outcomes.
#
# Queries the lockstep cannot mirror exactly are *routed to the scalar
# path* instead of approximated: point sets with duplicate coordinates
# (the scalar code deduplicates and remaps indices) and the
# never-expected empty-cavity anomaly.  All-collinear queries produce
# no triangles on either path and are simply skipped.


@dataclass
class StarBatchResult:
    """Output of :func:`delaunay_stars_batch`.

    ``owner[i]`` is the query index of row ``i`` of ``tris``; triangle
    vertices are ascending *local* indices into the query's member
    list.  ``fallback`` lists query indices the caller must run through
    the scalar :func:`delaunay` path.
    """

    owner: object
    tris: object
    fallback: object


def _records_batch(np, ax, ay, bx, by, cx, cy):
    """Elementwise :func:`_triangle_record` over coordinate arrays.

    Returns ``(orient, ccx, ccy, near, far)`` with exactly the scalar
    encoding: degenerate rows ``(near, far) = (-1, inf)``, slivers
    ``(-1, -1)``, well-conditioned rows carry the banded circumcenter.
    Ambiguous orientation rows use the exact Fraction predicate.
    """
    from repro.geometry.predicates import _exact_orient_row

    rbx, rby = bx - ax, by - ay
    rcx, rcy = cx - ax, cy - ay
    det = rbx * rcy - rby * rcx
    abs_det = np.abs(det)
    lb = np.maximum(np.abs(rbx), np.abs(rby))
    lc = np.maximum(np.abs(rcx), np.abs(rcy))
    scale = np.maximum(np.maximum(lb, lc), 1e-300)
    orient = np.where(det > 0.0, 1, -1).astype(np.int8)
    for row in np.nonzero(~(abs_det > 1e-12 * scale * scale))[0]:
        orient[row] = _exact_orient_row(
            ax[row], ay[row], bx[row], by[row], cx[row], cy[row]
        )
    degen = orient == 0
    ok = ~degen & (abs_det > _PREFILTER_COND * lb * lc)
    d_safe = np.where(ok, 2.0 * det, 1.0)
    b2 = rbx * rbx + rby * rby
    c2 = rcx * rcx + rcy * rcy
    ux = (rcy * b2 - rby * c2) / d_safe
    uy = (rbx * c2 - rcx * b2) / d_safe
    r_sq = ux * ux + uy * uy
    abs_det_safe = np.where(ok, abs_det, 1.0)
    center_err = _EPS * lb * lc * (lb + lc) / (2.0 * abs_det_safe)
    band = _PREFILTER_SAFETY * (
        2.0 * np.sqrt(r_sq) * center_err + 4.0 * _EPS * r_sq
    )
    ccx = np.where(ok, ax + ux, 0.0)
    ccy = np.where(ok, ay + uy, 0.0)
    near = np.where(ok, r_sq - band, -1.0)
    far = np.where(ok, r_sq + band, np.where(degen, np.inf, -1.0))
    return orient, ccx, ccy, near, far


def delaunay_stars_batch(xs, ys, members_indptr, members_flat):
    """Lockstep Bowyer–Watson over many small point sets at once.

    ``xs``/``ys`` are global coordinate arrays; query ``q``'s member
    list (ascending global ids, at least 3 entries) is
    ``members_flat[members_indptr[q]:members_indptr[q+1]]``.
    Returns a :class:`StarBatchResult` (triangles as local index
    triples, bit-identical to per-query :func:`delaunay` calls), or
    ``None`` when numpy is masked out.
    """
    from repro.core.compat import get_numpy
    from repro.geometry.predicates import (
        incircle_signs_batch,
        orientation_codes_batch,
    )

    np = get_numpy()
    if np is None:
        return None
    base = members_indptr[:-1]
    m = (members_indptr[1:] - base).astype(np.int64)
    B = int(m.shape[0])
    empty = np.zeros(0, dtype=np.int64)
    if B == 0:
        return StarBatchResult(empty, empty.reshape(0, 3), empty)
    total = int(members_indptr[-1])
    flat_x = xs[members_flat]
    flat_y = ys[members_flat]
    owner_flat = np.repeat(np.arange(B), m)

    # Queries containing duplicate coordinates go to the scalar path:
    # the scalar triangulator deduplicates and remaps indices, which
    # the lockstep deliberately does not mirror.
    order = np.lexsort((flat_y, flat_x, owner_flat))
    so, sx, sy = owner_flat[order], flat_x[order], flat_y[order]
    same = (so[1:] == so[:-1]) & (sx[1:] == sx[:-1]) & (sy[1:] == sy[:-1])
    dup_q = np.zeros(B, dtype=bool)
    dup_q[so[1:][same]] = True

    # All-collinear queries (per the eps-snapped orientation, exactly
    # as the scalar early-out) yield no triangles; skip them outright.
    pos_in_seg = np.arange(total) - base[owner_flat]
    tail = pos_in_seg >= 2
    t_owner = owner_flat[tail]
    codes = orientation_codes_batch(
        flat_x[base][t_owner], flat_y[base][t_owner],
        flat_x[base + 1][t_owner], flat_y[base + 1][t_owner],
        flat_x[tail], flat_y[tail],
    )
    noncollinear = np.zeros(B, dtype=bool)
    noncollinear[t_owner[codes != 0]] = True

    eligible = noncollinear & ~dup_q
    failed = np.zeros(B, dtype=bool)
    q_ids = np.nonzero(eligible)[0]
    if q_ids.shape[0] == 0:
        return StarBatchResult(
            empty, empty.reshape(0, 3), np.nonzero(dup_q)[0].astype(np.int64)
        )

    # Super-triangle vertices, per query (same formulas as delaunay()).
    min_x = np.minimum.reduceat(flat_x, base)
    max_x = np.maximum.reduceat(flat_x, base)
    min_y = np.minimum.reduceat(flat_y, base)
    max_y = np.maximum.reduceat(flat_y, base)
    span = np.maximum(np.maximum(max_x - min_x, max_y - min_y), 1.0)
    scx = (min_x + max_x) / 2.0
    scy = (min_y + max_y) / 2.0
    margin = 1e9 * span
    sup_x = np.stack([scx - margin, scx + margin, scx])
    sup_y = np.stack([scy - margin / 2.0, scy - margin / 2.0, scy + margin])

    # Extended per-query vertex table: local slots ``0..m-1`` hold the
    # member coordinates, ``m..m+2`` the super-triangle vertices (the
    # same layout the scalar triangulator uses, so triple sorting
    # behaves identically).  Contiguous layout makes every local-index
    # lookup a single fancy index instead of a branchy where().
    ext_base = base + 3 * np.arange(B)
    ext_x = np.empty(total + 3 * B)
    ext_y = np.empty(total + 3 * B)
    pos_ext = ext_base[owner_flat] + pos_in_seg
    ext_x[pos_ext] = flat_x
    ext_y[pos_ext] = flat_y
    sup_pos = ext_base + m
    for s in range(3):
        ext_x[sup_pos + s] = sup_x[s]
        ext_y[sup_pos + s] = sup_y[s]

    def vert(q, i):
        p = ext_base[q] + i
        return ext_x[p], ext_y[p]

    # The flat record pool, seeded with each query's super triangle.
    rec_node = q_ids.astype(np.int64)
    tri_a, tri_b, tri_c = m[q_ids], m[q_ids] + 1, m[q_ids] + 2
    orient, ccx, ccy, near, far = _records_batch(
        np, sup_x[0, q_ids], sup_y[0, q_ids],
        sup_x[1, q_ids], sup_y[1, q_ids],
        sup_x[2, q_ids], sup_y[2, q_ids],
    )

    alive_q = eligible.copy()
    max_m = int(m[q_ids].max())
    S = max_m + 3  # collision-free stride for (query, a, b) edge keys
    out_owner: list = []
    out_abc: list = []

    def extract(fin_mask):
        rows = fin_mask[rec_node]
        if not rows.any():
            return
        real = rows & (tri_c < m[rec_node])
        if real.any():
            out_owner.append(rec_node[real].copy())
            out_abc.append(
                np.stack([tri_a[real], tri_b[real], tri_c[real]], axis=1)
            )

    for t in range(max_m):
        fin = alive_q & (m == t)
        if fin.any():
            extract(fin)
            alive_q &= ~fin
        act = alive_q & (m > t)
        keep = act[rec_node]
        if not keep.all():
            rec_node = rec_node[keep]
            tri_a, tri_b, tri_c = tri_a[keep], tri_b[keep], tri_c[keep]
            orient = orient[keep]
            ccx, ccy, near, far = ccx[keep], ccy[keep], near[keep], far[keep]
        if rec_node.shape[0] == 0:
            break

        # Active records satisfy m > t, so slot t is a real member.
        p_t = ext_base[rec_node] + t
        px_r, py_r = ext_x[p_t], ext_y[p_t]

        # Cavity classification: the same three-regime scan as the
        # scalar loop (prefilter bands / degenerate / full test).
        dx = px_r - ccx
        dy = py_r - ccy
        d_sq = dx * dx + dy * dy
        has_band = near >= 0.0
        sure_out = has_band & (d_sq > far)
        sure_in = has_band & (d_sq < near)
        degen = ~has_band & (far > 0.0)
        needs = ~(sure_out | sure_in | degen)
        bad = sure_in
        if needs.any():
            rows = np.nonzero(needs)[0]
            q_r = rec_node[rows]
            avx, avy = vert(q_r, tri_a[rows])
            bvx, bvy = vert(q_r, tri_b[rows])
            cvx, cvy = vert(q_r, tri_c[rows])
            signs, _ = incircle_signs_batch(
                avx, avy, bvx, bvy, cvx, cvy, px_r[rows], py_r[rows]
            )
            inside = (signs == 0) | (signs == orient[rows])
            bad = bad.copy()
            bad[rows[inside]] = True

        # Empty cavity: exact predicates place every point inside the
        # super triangle, so this only fires on corrupt input — route
        # the query to the scalar path, which raises coherently.
        bad_counts = np.bincount(rec_node[bad], minlength=B)
        act_ids = np.nonzero(act)[0]
        broken = act_ids[bad_counts[act_ids] == 0]
        if broken.shape[0]:
            failed[broken] = True
            alive_q[broken] = False
            bad = bad & alive_q[rec_node]

        # Cavity boundary: edges appearing in exactly one bad triangle.
        bn = rec_node[bad]
        ba, bb, bc = tri_a[bad], tri_b[bad], tri_c[bad]
        e1 = np.concatenate([ba, bb, ba])
        e2 = np.concatenate([bb, bc, bc])
        en = np.concatenate([bn, bn, bn])
        keys = (en * S + e1) * S + e2
        keys.sort()
        single = np.ones(keys.shape[0], dtype=bool)
        single[1:] &= keys[1:] != keys[:-1]
        single[:-1] &= keys[:-1] != keys[1:]
        bkeys = keys[single]
        bq = bkeys // (S * S)
        rem = bkeys - bq * (S * S)
        ea = rem // S
        eb = rem - ea * S

        # Replacement triangles (vi=t, a, b) as sorted triples.
        t_arr = np.full(bq.shape, t, dtype=np.int64)
        first = np.where(t_arr < ea, t_arr, ea)
        second = np.where(t_arr < ea, ea, np.where(t_arr < eb, t_arr, eb))
        third = np.where(t_arr < eb, eb, t_arr)
        nax, nay = vert(bq, first)
        nbx, nby = vert(bq, second)
        ncx, ncy = vert(bq, third)
        n_orient, n_ccx, n_ccy, n_near, n_far = _records_batch(
            np, nax, nay, nbx, nby, ncx, ncy
        )
        ok_new = n_orient != 0  # vp collinear with the edge: no triangle

        keep = ~bad
        rec_node = np.concatenate([rec_node[keep], bq[ok_new]])
        tri_a = np.concatenate([tri_a[keep], first[ok_new]])
        tri_b = np.concatenate([tri_b[keep], second[ok_new]])
        tri_c = np.concatenate([tri_c[keep], third[ok_new]])
        orient = np.concatenate([orient[keep], n_orient[ok_new]])
        ccx = np.concatenate([ccx[keep], n_ccx[ok_new]])
        ccy = np.concatenate([ccy[keep], n_ccy[ok_new]])
        near = np.concatenate([near[keep], n_near[ok_new]])
        far = np.concatenate([far[keep], n_far[ok_new]])

    extract(alive_q)

    fallback = np.nonzero(dup_q | failed)[0].astype(np.int64)
    if out_owner:
        owner = np.concatenate(out_owner)
        tris = np.concatenate(out_abc, axis=0)
    else:
        owner, tris = empty, empty.reshape(0, 3)
    return StarBatchResult(owner, tris, fallback)


def _collinear_path(points: Sequence[Point], index_of: dict[Point, int]) -> Triangulation:
    """Degenerate triangulation for collinear input: a sorted path."""
    tri = Triangulation(points=list(points))
    ordered = sorted(index_of, key=lambda p: (p[0], p[1]))
    for a, b in zip(ordered, ordered[1:]):
        i, j = index_of[a], index_of[b]
        tri.edges.add((min(i, j), max(i, j)))
    return tri


def delaunay(points: Sequence[Point]) -> Triangulation:
    """Delaunay triangulation of ``points``.

    Correct for degenerate inputs (collinear runs, cocircular
    quadruples) thanks to the adaptively exact predicates; cocircular
    ties are broken deterministically.
    """
    # Callers on the hot path (the per-node local triangulations) pass
    # Point instances already; only re-wrap foreign coordinate pairs.
    pts = [p if type(p) is Point else Point(float(p[0]), float(p[1])) for p in points]
    index_of: dict[Point, int] = {}
    for i, p in enumerate(pts):
        index_of.setdefault(p, i)
    distinct = list(index_of.keys())

    if len(distinct) < 3:
        return _collinear_path(pts, index_of)

    if all(
        orientation(distinct[0], distinct[1], p) == Orientation.COLLINEAR
        for p in distinct[2:]
    ):
        return _collinear_path(pts, index_of)

    # Super-triangle enclosing every input point.  The margin must
    # exceed the circumradius of any true Delaunay triangle, or that
    # triangle's circumcircle swallows a super vertex and the triangle
    # is wrongly dropped; 1e9 x span tolerates hull slivers down to
    # ~1e-9 relative flatness, and the adaptively exact predicates
    # stay correct at any magnitude (Fraction arithmetic is exact).
    min_x = min(p[0] for p in distinct)
    max_x = max(p[0] for p in distinct)
    min_y = min(p[1] for p in distinct)
    max_y = max(p[1] for p in distinct)
    span = max(max_x - min_x, max_y - min_y, 1.0)
    cx = (min_x + max_x) / 2.0
    cy = (min_y + max_y) / 2.0
    margin = 1e9 * span
    super_pts = [
        Point(cx - margin, cy - margin / 2.0),
        Point(cx + margin, cy - margin / 2.0),
        Point(cx, cy + margin),
    ]

    verts: list[Point] = distinct + super_pts
    s0 = len(distinct)

    # The working set holds one record per triangle: the index triple
    # plus its cached orientation sign and circumcenter bands (see
    # _triangle_record), so the cavity scan is one dict-free distance
    # test per triangle in the common case.
    records = [_triangle_record((s0, s0 + 1, s0 + 2), verts)]

    for vi in range(len(distinct)):
        vp = verts[vi]
        px, py = vp
        bad: list[tuple[int, int, int]] = []
        good: list[tuple] = []
        bad_append = bad.append
        good_append = good.append
        for rec in records:
            near = rec[4]
            if near >= 0.0:
                dx = px - rec[2]
                dy = py - rec[3]
                d_sq = dx * dx + dy * dy
                if d_sq > rec[5]:
                    good_append(rec)
                    continue
                if d_sq < near:
                    bad_append(rec[0])
                    continue
            elif rec[5] > 0.0:  # degenerate triangle: no interior
                good_append(rec)
                continue
            tri = rec[0]
            if _in_circumcircle(verts[tri[0]], verts[tri[1]], verts[tri[2]], vp, rec[1]):
                bad_append(tri)
            else:
                good_append(rec)
        if not bad:  # pragma: no cover - exact predicates locate every point
            raise RuntimeError("Bowyer-Watson cavity is empty; input corrupt")

        # Boundary of the cavity: edges that belong to exactly one bad
        # triangle.  Triangles are stored as sorted triples, so each
        # edge pair below is already ordered — no min/max per key.
        edge_count: dict[tuple[int, int], int] = {}
        for i, j, k in bad:
            for key in ((i, j), (j, k), (i, k)):
                edge_count[key] = edge_count.get(key, 0) + 1
        boundary = [e for e, count in edge_count.items() if count == 1]

        records = good
        for a, b in boundary:
            # a < b (boundary keys are ordered) and vi is new, so the
            # sorted triple follows from a three-way placement of vi.
            if vi < a:
                new_tri = (vi, a, b)
            elif vi < b:
                new_tri = (a, vi, b)
            else:
                new_tri = (a, b, vi)
            rec = _triangle_record(new_tri, verts)
            if rec[1] == 0:
                continue  # vp collinear with the edge: no triangle
            records.append(rec)

    result = Triangulation(points=pts)
    seen: set[tuple[int, int, int]] = set()
    for i, j, k in (rec[0] for rec in records):
        if i >= s0 or j >= s0 or k >= s0:
            continue  # touches the super-triangle
        # Map back to original input indices.  index_of values increase
        # in first-occurrence order, which is exactly the order of
        # ``distinct``, so the sorted triple (i, j, k) maps to a triple
        # that is already sorted.
        tri_ids = (index_of[verts[i]], index_of[verts[j]], index_of[verts[k]])
        if tri_ids in seen:
            continue
        seen.add(tri_ids)
        result.triangles.append(tri_ids)
        for a, b in ((tri_ids[0], tri_ids[1]), (tri_ids[1], tri_ids[2]), (tri_ids[0], tri_ids[2])):
            result.edges.add((a, b))
    return result
