"""From-scratch Delaunay triangulation (Bowyer–Watson, adaptively exact).

The localized Delaunay construction (paper Algorithm 2) has every node
compute the Delaunay triangulation of its 1-hop neighborhood, so the
triangulator is called once per node on a few dozen points.  The
incremental Bowyer–Watson scheme here is O(m^2) per call, which is far
below the cost of anything else in the pipeline at those sizes, and is
cross-validated against :mod:`scipy.spatial` in the test suite.

Robustness: the cavity in-circle test is **adaptively exact** — the
fast float determinant decides whenever its magnitude exceeds a
conservative rounding-error bound, and borderline cases are recomputed
with :class:`fractions.Fraction` (exact for any float input).  That is
what keeps degenerate inputs correct: collinear runs of points, exact
cocircular quadruples (grid deployments are full of both), and points
landing exactly on existing edges.  Exactly-cocircular point sets are
re-triangulated with an arbitrary but deterministic diagonal.

Degenerate inputs are handled explicitly:

* fewer than three points, or all points collinear, yield a
  triangulation with no triangles whose edge set is the path along the
  sorted points (the limit object of the Delaunay graph);
* duplicate points are collapsed before triangulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from repro.geometry.predicates import Orientation, orientation, orientation_value
from repro.geometry.primitives import Point


@dataclass
class Triangulation:
    """Result of :func:`delaunay`.

    ``triangles`` hold indices into ``points`` as sorted triples, and
    ``edges`` as sorted pairs.  Indices refer to the *input* point
    sequence, including duplicates (only the first occurrence of a
    duplicated coordinate appears in the output structures).
    """

    points: list[Point]
    triangles: list[tuple[int, int, int]] = field(default_factory=list)
    edges: set[tuple[int, int]] = field(default_factory=set)
    _incidence: dict[int, list[tuple[int, int, int]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def adjacency(self) -> dict[int, set[int]]:
        """Adjacency map of the triangulation's edge set."""
        adj: dict[int, set[int]] = {i: set() for i in range(len(self.points))}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def triangles_of(self, vertex: int) -> list[tuple[int, int, int]]:
        """All triangles incident on ``vertex`` (O(deg) via incidence map).

        The vertex→triangles map is built once on first use and reused;
        callers that probe every vertex (the localized Delaunay
        candidate generation does) pay O(T) total instead of O(V·T).
        """
        if not self._incidence and self.triangles:
            for tri in self.triangles:
                for v in tri:
                    self._incidence.setdefault(v, []).append(tri)
        return list(self._incidence.get(vertex, ()))


def _sign(value: float) -> int:
    if value > 0.0:
        return 1
    if value < 0.0:
        return -1
    return 0


def _orient_sign_exact(a: Point, b: Point, c: Point) -> int:
    """Exact sign of the orientation determinant (Fraction arithmetic)."""
    ax, ay = Fraction(a[0]), Fraction(a[1])
    bx, by = Fraction(b[0]), Fraction(b[1])
    cx, cy = Fraction(c[0]), Fraction(c[1])
    det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    return _sign(det)


def _incircle_sign_exact(a: Point, b: Point, c: Point, d: Point) -> int:
    """Exact sign of the in-circle determinant (Fraction arithmetic)."""
    adx = Fraction(a[0]) - Fraction(d[0])
    ady = Fraction(a[1]) - Fraction(d[1])
    bdx = Fraction(b[0]) - Fraction(d[0])
    bdy = Fraction(b[1]) - Fraction(d[1])
    cdx = Fraction(c[0]) - Fraction(d[0])
    cdy = Fraction(c[1]) - Fraction(d[1])
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    return _sign(det)


def _orient_sign(a: Point, b: Point, c: Point) -> int:
    """Sign of orientation(a, b, c), exact on borderline magnitudes."""
    det = orientation_value(a, b, c)
    scale = max(
        abs(b[0] - a[0]), abs(b[1] - a[1]),
        abs(c[0] - a[0]), abs(c[1] - a[1]),
        1e-300,
    )
    if abs(det) > 1e-12 * scale * scale:
        return _sign(det)
    return _orient_sign_exact(a, b, c)


def _in_circumcircle(a: Point, b: Point, c: Point, d: Point, orient: int | None = None) -> bool:
    """Whether ``d`` is inside (or exactly on) the circumcircle of ``abc``.

    Boundary-inclusive on purpose: a point exactly on an existing edge
    or cocircular with a triangle must open every adjacent triangle so
    the Bowyer–Watson cavity stays correct.  The float determinant
    decides when it exceeds a forward-error bound (the summed term
    magnitudes scaled by a safe multiple of machine epsilon); only
    borderline cases pay for exact arithmetic.

    ``orient`` may carry a precomputed ``_orient_sign(a, b, c)`` — the
    sign is a property of the triangle alone, so callers testing many
    points against one triangle compute it once.
    """
    if orient is None:
        orient = _orient_sign(a, b, c)
    if orient == 0:
        return False  # degenerate triangle: no interior
    adx = a[0] - d[0]
    ady = a[1] - d[1]
    bdx = b[0] - d[0]
    bdy = b[1] - d[1]
    cdx = c[0] - d[0]
    cdy = c[1] - d[1]
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    magnitude = (
        abs(adx) * (abs(bdy) * cd2 + abs(cdy) * bd2)
        + abs(ady) * (abs(bdx) * cd2 + abs(cdx) * bd2)
        + ad2 * (abs(bdx) * abs(cdy) + abs(cdx) * abs(bdy))
    )
    if abs(det) > 1e-13 * magnitude:
        det_sign = _sign(det)
    else:
        det_sign = _incircle_sign_exact(a, b, c, d)
    if det_sign == 0:
        return True  # exactly cocircular: boundary-inclusive
    return det_sign == orient


# The cavity-scan prefilter brackets each circumcircle with an
# uncertainty band derived from the float error of its computed center:
# err(center) ~ eps * lb * lc * (lb + lc) / (2 |det|) for edge scales
# lb, lc and orientation determinant det, which propagates to the
# squared-distance comparison as 2 * r * err(center) + O(eps * r^2).
# The band is that bound inflated by _PREFILTER_SAFETY, so the cheap
# distance test can only ever *defer* to the adaptive exact determinant
# inside the band, never contradict it — the prefilter cannot change
# the output.  Triangles flatter than _PREFILTER_COND skip the
# prefilter entirely (their float circumcenter is meaningless).
_PREFILTER_SAFETY = 1e4
_PREFILTER_COND = 1e-4
_EPS = 2.220446049250313e-16  # 2**-52


def _triangle_record(
    tri: tuple[int, int, int], verts: Sequence[Point]
) -> tuple[tuple[int, int, int], int, float, float, float, float]:
    """Precompute per-triangle data for the cavity scan.

    Returns ``(tri, orient, cx, cy, near, far)``: the cached
    orientation sign plus a float circumcenter with conservative
    inner/outer squared-radius bands.  A candidate point farther than
    ``far`` is certainly outside the circumcircle and one closer than
    ``near`` is certainly inside; only the thin shell between them (and
    every point of an ill-conditioned triangle, flagged ``far < 0``)
    pays for the adaptive exact in-circle test.
    """
    a, b, c = verts[tri[0]], verts[tri[1]], verts[tri[2]]
    # Work in coordinates relative to ``a`` so the conditioning check
    # and the center are immune to a large common offset.  The cross
    # product below is bit-identical to orientation_value(a, b, c), so
    # the cached sign replicates _orient_sign exactly (including its
    # exact-arithmetic fallback band).
    bx, by = b[0] - a[0], b[1] - a[1]
    cx_, cy_ = c[0] - a[0], c[1] - a[1]
    det = bx * cy_ - by * cx_
    abs_det = abs(det)
    abx = abs(bx)
    aby = abs(by)
    lb = abx if abx > aby else aby
    acx = abs(cx_)
    acy = abs(cy_)
    lc = acx if acx > acy else acy
    scale = lb if lb > lc else lc
    if scale < 1e-300:
        scale = 1e-300
    if abs_det > 1e-12 * scale * scale:
        orient = 1 if det > 0.0 else -1
    else:
        orient = _orient_sign_exact(a, b, c)
    if orient == 0:
        # Degenerate triangle: no interior, every point is "outside".
        return (tri, 0, 0.0, 0.0, -1.0, float("inf"))
    # Condition on the *product* of the edge scales, not scale**2: a
    # triangle with one short and one astronomically long edge (every
    # super-triangle neighbor during construction) is perfectly well
    # conditioned when its angles are, and must not lose the prefilter.
    if abs_det <= _PREFILTER_COND * lb * lc:
        # Sliver: float circumcenter too inaccurate, no prefilter.
        return (tri, orient, 0.0, 0.0, -1.0, -1.0)
    d = 2.0 * det
    b2 = bx * bx + by * by
    c2 = cx_ * cx_ + cy_ * cy_
    ux = (cy_ * b2 - by * c2) / d
    uy = (bx * c2 - cx_ * b2) / d
    r_sq = ux * ux + uy * uy
    center_err = _EPS * lb * lc * (lb + lc) / (2.0 * abs_det)
    band = _PREFILTER_SAFETY * (
        2.0 * math.sqrt(r_sq) * center_err + 4.0 * _EPS * r_sq
    )
    return (tri, orient, a[0] + ux, a[1] + uy, r_sq - band, r_sq + band)


def _collinear_path(points: Sequence[Point], index_of: dict[Point, int]) -> Triangulation:
    """Degenerate triangulation for collinear input: a sorted path."""
    tri = Triangulation(points=list(points))
    ordered = sorted(index_of, key=lambda p: (p[0], p[1]))
    for a, b in zip(ordered, ordered[1:]):
        i, j = index_of[a], index_of[b]
        tri.edges.add((min(i, j), max(i, j)))
    return tri


def delaunay(points: Sequence[Point]) -> Triangulation:
    """Delaunay triangulation of ``points``.

    Correct for degenerate inputs (collinear runs, cocircular
    quadruples) thanks to the adaptively exact predicates; cocircular
    ties are broken deterministically.
    """
    # Callers on the hot path (the per-node local triangulations) pass
    # Point instances already; only re-wrap foreign coordinate pairs.
    pts = [p if type(p) is Point else Point(float(p[0]), float(p[1])) for p in points]
    index_of: dict[Point, int] = {}
    for i, p in enumerate(pts):
        index_of.setdefault(p, i)
    distinct = list(index_of.keys())

    if len(distinct) < 3:
        return _collinear_path(pts, index_of)

    if all(
        orientation(distinct[0], distinct[1], p) == Orientation.COLLINEAR
        for p in distinct[2:]
    ):
        return _collinear_path(pts, index_of)

    # Super-triangle enclosing every input point.  The margin must
    # exceed the circumradius of any true Delaunay triangle, or that
    # triangle's circumcircle swallows a super vertex and the triangle
    # is wrongly dropped; 1e9 x span tolerates hull slivers down to
    # ~1e-9 relative flatness, and the adaptively exact predicates
    # stay correct at any magnitude (Fraction arithmetic is exact).
    min_x = min(p[0] for p in distinct)
    max_x = max(p[0] for p in distinct)
    min_y = min(p[1] for p in distinct)
    max_y = max(p[1] for p in distinct)
    span = max(max_x - min_x, max_y - min_y, 1.0)
    cx = (min_x + max_x) / 2.0
    cy = (min_y + max_y) / 2.0
    margin = 1e9 * span
    super_pts = [
        Point(cx - margin, cy - margin / 2.0),
        Point(cx + margin, cy - margin / 2.0),
        Point(cx, cy + margin),
    ]

    verts: list[Point] = distinct + super_pts
    s0 = len(distinct)

    # The working set holds one record per triangle: the index triple
    # plus its cached orientation sign and circumcenter bands (see
    # _triangle_record), so the cavity scan is one dict-free distance
    # test per triangle in the common case.
    records = [_triangle_record((s0, s0 + 1, s0 + 2), verts)]

    for vi in range(len(distinct)):
        vp = verts[vi]
        px, py = vp
        bad: list[tuple[int, int, int]] = []
        good: list[tuple] = []
        bad_append = bad.append
        good_append = good.append
        for rec in records:
            near = rec[4]
            if near >= 0.0:
                dx = px - rec[2]
                dy = py - rec[3]
                d_sq = dx * dx + dy * dy
                if d_sq > rec[5]:
                    good_append(rec)
                    continue
                if d_sq < near:
                    bad_append(rec[0])
                    continue
            elif rec[5] > 0.0:  # degenerate triangle: no interior
                good_append(rec)
                continue
            tri = rec[0]
            if _in_circumcircle(verts[tri[0]], verts[tri[1]], verts[tri[2]], vp, rec[1]):
                bad_append(tri)
            else:
                good_append(rec)
        if not bad:  # pragma: no cover - exact predicates locate every point
            raise RuntimeError("Bowyer-Watson cavity is empty; input corrupt")

        # Boundary of the cavity: edges that belong to exactly one bad
        # triangle.  Triangles are stored as sorted triples, so each
        # edge pair below is already ordered — no min/max per key.
        edge_count: dict[tuple[int, int], int] = {}
        for i, j, k in bad:
            for key in ((i, j), (j, k), (i, k)):
                edge_count[key] = edge_count.get(key, 0) + 1
        boundary = [e for e, count in edge_count.items() if count == 1]

        records = good
        for a, b in boundary:
            # a < b (boundary keys are ordered) and vi is new, so the
            # sorted triple follows from a three-way placement of vi.
            if vi < a:
                new_tri = (vi, a, b)
            elif vi < b:
                new_tri = (a, vi, b)
            else:
                new_tri = (a, b, vi)
            rec = _triangle_record(new_tri, verts)
            if rec[1] == 0:
                continue  # vp collinear with the edge: no triangle
            records.append(rec)

    result = Triangulation(points=pts)
    seen: set[tuple[int, int, int]] = set()
    for i, j, k in (rec[0] for rec in records):
        if i >= s0 or j >= s0 or k >= s0:
            continue  # touches the super-triangle
        # Map back to original input indices.  index_of values increase
        # in first-occurrence order, which is exactly the order of
        # ``distinct``, so the sorted triple (i, j, k) maps to a triple
        # that is already sorted.
        tri_ids = (index_of[verts[i]], index_of[verts[j]], index_of[verts[k]])
        if tri_ids in seen:
            continue
        seen.add(tri_ids)
        result.triangles.append(tri_ids)
        for a, b in ((tri_ids[0], tri_ids[1]), (tri_ids[1], tri_ids[2]), (tri_ids[0], tri_ids[2])):
            result.edges.add((a, b))
    return result
