"""Circles, circumcircles and the empty-disk tests behind proximity graphs.

The paper's constructions all reduce to empty-disk questions:

* a **Gabriel edge** ``uv`` exists when the disk with diameter ``uv``
  is empty of other nodes (and ``|uv| <= 1``);
* a **(localized) Delaunay triangle** ``uvw`` exists when its
  circumcircle is empty of (local) nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.predicates import in_circle, orientation_value
from repro.geometry.primitives import Point, dist_sq, midpoint


@dataclass(frozen=True)
class Circle:
    """A circle given by center and radius."""

    center: Point
    radius: float

    def contains(self, p: Point, *, tol: float = 1e-9) -> bool:
        """Whether ``p`` is strictly inside this circle.

        ``tol`` shrinks the circle slightly so that points numerically
        on the boundary are reported *outside*; the Delaunay property
        is an open-disk condition.
        """
        r = self.radius - tol
        if r <= 0.0:
            return False
        return dist_sq(self.center, p) < r * r


def _circumcenter_exact(a: Point, b: Point, c: Point) -> Optional[Point]:
    """Circumcenter in exact rational arithmetic (sliver rescue path).

    Floats convert to :class:`~fractions.Fraction` losslessly, so the
    only rounding is the final conversion back — the center is correct
    to within one ulp even for triangles whose float circumcenter is
    hopelessly ill-conditioned.
    """
    from fractions import Fraction

    ax, ay = Fraction(a[0]), Fraction(a[1])
    bx, by = Fraction(b[0]) - ax, Fraction(b[1]) - ay
    cx, cy = Fraction(c[0]) - ax, Fraction(c[1]) - ay
    d = 2 * (bx * cy - by * cx)
    if d == 0:
        return None  # exactly collinear despite the float gate
    b2 = bx * bx + by * by
    c2 = cx * cx + cy * cy
    ux = (cy * b2 - by * c2) / d
    uy = (bx * c2 - cx * b2) / d
    return Point(float(ux + ax), float(uy + ay))


def circumcircle(a: Point, b: Point, c: Point) -> Optional[Circle]:
    """Circumcircle of triangle ``abc``, or ``None`` when degenerate.

    Degenerate means the three points are (numerically) collinear, in
    which case no finite circumcircle exists.  The float center is
    self-checked for equidistance; sliver triangles whose cancellation
    error exceeds the tolerance are recomputed in exact rational
    arithmetic, so the returned circle is trustworthy even when the
    triangle is barely non-collinear.
    """
    d = 2.0 * orientation_value(a, b, c)
    scale = max(abs(a[0]), abs(a[1]), abs(b[0]), abs(b[1]), abs(c[0]), abs(c[1]), 1.0)
    if abs(d) <= 1e-12 * scale * scale:
        return None
    a2 = a[0] * a[0] + a[1] * a[1]
    b2 = b[0] * b[0] + b[1] * b[1]
    c2 = c[0] * c[0] + c[1] * c[1]
    ux = (a2 * (b[1] - c[1]) + b2 * (c[1] - a[1]) + c2 * (a[1] - b[1])) / d
    uy = (a2 * (c[0] - b[0]) + b2 * (a[0] - c[0]) + c2 * (b[0] - a[0])) / d
    center = Point(ux, uy)
    # Self-check: all three vertices must be equidistant from the
    # center.  Squared-distance spread beyond the tolerance means the
    # division above cancelled catastrophically (sliver triangle).
    ra = dist_sq(center, a)
    tol = 1e-7 * (ra + 1.0)
    if (
        abs(dist_sq(center, b) - ra) > tol
        or abs(dist_sq(center, c) - ra) > tol
    ):
        exact = _circumcenter_exact(a, b, c)
        if exact is None:
            return None
        center = exact
    return Circle(center, math.sqrt(dist_sq(center, a)))


def circumcircles_batch(ax, ay, bx, by, cx, cy):
    """Elementwise :func:`circumcircle` over coordinate arrays.

    Returns ``(valid, ux, uy, radius)``.  The float center and the
    degeneracy gate replicate the scalar expressions exactly; rows that
    fail the equidistance self-check are recomputed through the scalar
    function (which applies the exact rational rescue), so every valid
    row carries the identical circle the scalar path would produce.
    """
    from repro.core.compat import np

    d = 2.0 * ((bx - ax) * (cy - ay) - (by - ay) * (cx - ax))
    scale = np.maximum(
        np.maximum(np.maximum(abs(ax), abs(ay)), np.maximum(abs(bx), abs(by))),
        np.maximum(np.maximum(abs(cx), abs(cy)), 1.0),
    )
    valid = abs(d) > 1e-12 * scale * scale
    d_safe = np.where(valid, d, 1.0)
    a2 = ax * ax + ay * ay
    b2 = bx * bx + by * by
    c2 = cx * cx + cy * cy
    ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d_safe
    uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d_safe
    ra = (ux - ax) ** 2 + (uy - ay) ** 2
    tol = 1e-7 * (ra + 1.0)
    spread = np.maximum(
        abs((ux - bx) ** 2 + (uy - by) ** 2 - ra),
        abs((ux - cx) ** 2 + (uy - cy) ** 2 - ra),
    )
    radius = np.sqrt(ra)
    for row in np.nonzero(valid & (spread > tol))[0]:
        circle = circumcircle(
            Point(float(ax[row]), float(ay[row])),
            Point(float(bx[row]), float(by[row])),
            Point(float(cx[row]), float(cy[row])),
        )
        if circle is None:
            valid[row] = False
            continue
        ux[row], uy[row] = circle.center
        radius[row] = circle.radius
    return valid, ux, uy, radius


def contains_batch(ux, uy, radius, px, py, *, tol: float = 1e-9):
    """Elementwise :meth:`Circle.contains` over arrays."""
    r = radius - tol
    dx = ux - px
    dy = uy - py
    return (r > 0.0) & (dx * dx + dy * dy < r * r)


def point_in_circumcircle(a: Point, b: Point, c: Point, d: Point) -> bool:
    """Whether ``d`` lies strictly inside the circumcircle of ``abc``.

    Orientation-independent wrapper around the raw in-circle
    determinant: the sign convention of :func:`~repro.geometry.predicates.in_circle`
    assumes counter-clockwise ``abc``, so we normalize by the triangle
    orientation.  Near-cocircular points are classified as outside.
    """
    orient = orientation_value(a, b, c)
    if orient == 0.0:
        return False
    det = in_circle(a, b, c, d)
    # Scale-aware tolerance: the determinant is O(L^4) in coordinates.
    scale = max(
        abs(a[0] - d[0]), abs(a[1] - d[1]),
        abs(b[0] - d[0]), abs(b[1] - d[1]),
        abs(c[0] - d[0]), abs(c[1] - d[1]),
        1e-30,
    )
    eps = 1e-12 * scale ** 4
    signed = det if orient > 0 else -det
    if signed > eps:
        return True
    if signed >= -eps:
        # Ambiguous band: the determinant is proportional to the
        # triangle area, so a near-degenerate (sliver) triangle can
        # push a clearly-inside point under ``eps``.  Decide those by
        # the explicit circumcircle instead of calling them outside.
        circle = circumcircle(a, b, c)
        if circle is not None:
            return circle.contains(d)
    return False


def disk_contains(center: Point, radius: float, p: Point, *, tol: float = 1e-9) -> bool:
    """Whether ``p`` lies strictly inside the disk ``(center, radius)``."""
    r = radius - tol
    if r <= 0.0:
        return False
    return dist_sq(center, p) < r * r


def gabriel_disk_empty(
    u: Point, v: Point, others: Iterable[Point], *, tol: float = 1e-9
) -> bool:
    """Gabriel test: is the disk with diameter ``uv`` empty of ``others``?

    ``others`` may include ``u`` and ``v`` themselves; they are on the
    boundary and therefore never counted as inside.
    """
    center = midpoint(u, v)
    radius_sq = dist_sq(u, v) / 4.0
    threshold = radius_sq - tol
    if threshold <= 0.0:
        return True
    for w in others:
        if w == u or w == v:
            continue
        if dist_sq(center, w) < threshold:
            return False
    return True


def lune_contains(u: Point, v: Point, w: Point, *, tol: float = 1e-9) -> bool:
    """RNG lune test: is ``w`` strictly inside the lune of ``u`` and ``v``?

    The lune is the intersection of the two disks centered at ``u`` and
    ``v`` with radius ``|uv|``; an RNG edge ``uv`` requires the lune to
    be empty.
    """
    d_uv = dist_sq(u, v)
    limit = d_uv - tol
    return dist_sq(u, w) < limit and dist_sq(v, w) < limit
