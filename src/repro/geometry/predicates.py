"""Geometric predicates: orientation, in-circle, segment intersection.

The orientation and in-circle predicates follow the classic determinant
formulations.  Exact arithmetic is not required for this reproduction
(node coordinates are random floats, so degeneracies have measure
zero), but both predicates use an epsilon tuned to the magnitude of the
inputs so that near-degenerate configurations are classified as
collinear / cocircular rather than flipping sign on rounding noise.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.geometry.primitives import Point


class Orientation(enum.IntEnum):
    """Result of the :func:`orientation` predicate."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


#: Relative tolerance used to snap tiny determinants to zero.
_REL_EPS = 1e-12


def orientation_value(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle ``abc`` (raw determinant)."""
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def orientation(a: Point, b: Point, c: Point) -> Orientation:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns :data:`Orientation.COUNTERCLOCKWISE` when ``c`` lies to the
    left of the directed line ``a -> b``, :data:`Orientation.CLOCKWISE`
    when it lies to the right, and :data:`Orientation.COLLINEAR` when
    the three points are (numerically) collinear.
    """
    det = orientation_value(a, b, c)
    # Scale the epsilon with the coordinate magnitudes involved so the
    # predicate behaves the same for points in [0,1]^2 and [0,1000]^2.
    scale = (
        abs(b[0] - a[0])
        + abs(b[1] - a[1])
        + abs(c[0] - a[0])
        + abs(c[1] - a[1])
    )
    eps = _REL_EPS * scale * scale
    if det > eps:
        return Orientation.COUNTERCLOCKWISE
    if det < -eps:
        return Orientation.CLOCKWISE
    return Orientation.COLLINEAR


def in_circle(a: Point, b: Point, c: Point, d: Point) -> float:
    """In-circle determinant for ``d`` against the circle through ``a, b, c``.

    The triple ``(a, b, c)`` must be in counter-clockwise order; then
    the result is positive when ``d`` is strictly inside the
    circumcircle, negative when outside and (near) zero when the four
    points are cocircular.  Callers needing an orientation-independent
    answer should use :func:`repro.geometry.circle.point_in_circumcircle`.
    """
    adx = a[0] - d[0]
    ady = a[1] - d[1]
    bdx = b[0] - d[0]
    bdy = b[1] - d[1]
    cdx = c[0] - d[0]
    cdy = c[1] - d[1]
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    return (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )


def on_segment(p: Point, q: Point, r: Point) -> bool:
    """Whether collinear point ``r`` lies on the closed segment ``pq``."""
    return (
        min(p[0], q[0]) - 1e-12 <= r[0] <= max(p[0], q[0]) + 1e-12
        and min(p[1], q[1]) - 1e-12 <= r[1] <= max(p[1], q[1]) + 1e-12
    )


def segments_intersect(p1: Point, q1: Point, p2: Point, q2: Point) -> bool:
    """Whether closed segments ``p1q1`` and ``p2q2`` intersect at all.

    Shared endpoints and touching count as intersection; use
    :func:`segments_cross` for the planar-graph notion of a *crossing*.
    """
    o1 = orientation(p1, q1, p2)
    o2 = orientation(p1, q1, q2)
    o3 = orientation(p2, q2, p1)
    o4 = orientation(p2, q2, q1)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == Orientation.COLLINEAR and on_segment(p1, q1, p2):
        return True
    if o2 == Orientation.COLLINEAR and on_segment(p1, q1, q2):
        return True
    if o3 == Orientation.COLLINEAR and on_segment(p2, q2, p1):
        return True
    if o4 == Orientation.COLLINEAR and on_segment(p2, q2, q1):
        return True
    return False


def segments_cross(p1: Point, q1: Point, p2: Point, q2: Point) -> bool:
    """Whether two segments *properly cross* (intersect in their interiors).

    This is the test used to decide planarity of an embedded graph:
    edges that merely share an endpoint do not cross.
    """
    if p1 in (p2, q2) or q1 in (p2, q2):
        return False
    o1 = orientation(p1, q1, p2)
    o2 = orientation(p1, q1, q2)
    o3 = orientation(p2, q2, p1)
    o4 = orientation(p2, q2, q1)
    if (
        Orientation.COLLINEAR in (o1, o2, o3, o4)
    ):
        # Touching or overlapping but with an endpoint on the other
        # segment: treat interior-touching as a crossing, endpoint
        # contact as not.  For random-coordinate inputs this branch is
        # exercised only by hand-built degenerate tests.
        if o1 == Orientation.COLLINEAR and on_segment(p1, q1, p2):
            return _strictly_inside(p1, q1, p2)
        if o2 == Orientation.COLLINEAR and on_segment(p1, q1, q2):
            return _strictly_inside(p1, q1, q2)
        if o3 == Orientation.COLLINEAR and on_segment(p2, q2, p1):
            return _strictly_inside(p2, q2, p1)
        if o4 == Orientation.COLLINEAR and on_segment(p2, q2, q1):
            return _strictly_inside(p2, q2, q1)
        return False
    return o1 != o2 and o3 != o4


def _strictly_inside(p: Point, q: Point, r: Point) -> bool:
    """Whether collinear ``r`` lies strictly inside segment ``pq``."""
    return on_segment(p, q, r) and r != p and r != q


# -- batched predicates (SoA kernels) -----------------------------------------
#
# The vectorized construction core evaluates predicates on whole arrays
# of rows at once.  Two regimes, mirroring the scalar code exactly:
#
# * orientation() snaps tiny determinants to COLLINEAR — that snap *is*
#   the semantics, so orientation_codes_batch just replicates the float
#   arithmetic elementwise (IEEE-identical, no fallback needed);
# * the triangulator's _orient_sign / _in_circumcircle are adaptively
#   exact — the batch versions reuse the same float determinant and the
#   same error band, and route only the ambiguous rows to the existing
#   Fraction-exact predicates.  The error-band filter can only *defer*
#   to exact arithmetic, never contradict it, which the hypothesis
#   property suite asserts row by row.


def _exact_orient_row(ax, ay, bx, by, cx, cy) -> int:
    from fractions import Fraction

    det = (Fraction(bx) - Fraction(ax)) * (Fraction(cy) - Fraction(ay)) - (
        Fraction(by) - Fraction(ay)
    ) * (Fraction(cx) - Fraction(ax))
    return (det > 0) - (det < 0)


def _exact_incircle_row(ax, ay, bx, by, cx, cy, dx, dy) -> int:
    from fractions import Fraction

    adx = Fraction(ax) - Fraction(dx)
    ady = Fraction(ay) - Fraction(dy)
    bdx = Fraction(bx) - Fraction(dx)
    bdy = Fraction(by) - Fraction(dy)
    cdx = Fraction(cx) - Fraction(dx)
    cdy = Fraction(cy) - Fraction(dy)
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    return (det > 0) - (det < 0)


def orientation_codes_batch(ax, ay, bx, by, cx, cy):
    """Elementwise :func:`orientation` over coordinate arrays.

    Returns an int8 array of :class:`Orientation` values.  Pure float
    replication — numpy's elementwise arithmetic is IEEE-identical to
    the scalar expressions, so this *is* ``orientation`` per row.
    """
    from repro.core.compat import np

    det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    scale = abs(bx - ax) + abs(by - ay) + abs(cx - ax) + abs(cy - ay)
    eps = _REL_EPS * scale * scale
    return (det > eps).astype(np.int8) - (det < -eps).astype(np.int8)


def orient_signs_batch(ax, ay, bx, by, cx, cy):
    """Adaptively exact orientation signs over coordinate arrays.

    The batch analogue of the triangulator's ``_orient_sign``: the
    float determinant decides when it clears the relative error band,
    and only ambiguous rows pay for exact (Fraction) arithmetic.
    Returns ``(signs, ambiguous)`` so callers (and the property suite)
    can see exactly which rows deferred.
    """
    from repro.core.compat import np

    rbx, rby = bx - ax, by - ay
    rcx, rcy = cx - ax, cy - ay
    det = rbx * rcy - rby * rcx
    scale = np.maximum(
        np.maximum(abs(rbx), abs(rby)), np.maximum(abs(rcx), abs(rcy))
    )
    scale = np.maximum(scale, 1e-300)
    ambiguous = ~(abs(det) > 1e-12 * scale * scale)
    signs = np.sign(det).astype(np.int8)
    for row in np.nonzero(ambiguous)[0]:
        signs[row] = _exact_orient_row(
            ax[row], ay[row], bx[row], by[row], cx[row], cy[row]
        )
    return signs, ambiguous


def incircle_signs_batch(ax, ay, bx, by, cx, cy, dx, dy):
    """Adaptively exact in-circle determinant signs over arrays.

    Replicates the float determinant and forward-error bound of the
    triangulator's cavity test elementwise; rows whose determinant
    falls inside the bound are recomputed exactly.  Returns
    ``(signs, ambiguous)``; the sign convention matches
    :func:`in_circle` (positive = inside for counter-clockwise abc).
    """
    from repro.core.compat import np

    adx, ady = ax - dx, ay - dy
    bdx, bdy = bx - dx, by - dy
    cdx, cdy = cx - dx, cy - dy
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (
        adx * (bdy * cd2 - cdy * bd2)
        - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy)
    )
    magnitude = (
        abs(adx) * (abs(bdy) * cd2 + abs(cdy) * bd2)
        + abs(ady) * (abs(bdx) * cd2 + abs(cdx) * bd2)
        + ad2 * (abs(bdx) * abs(cdy) + abs(cdx) * abs(bdy))
    )
    ambiguous = ~(abs(det) > 1e-13 * magnitude)
    signs = np.sign(det).astype(np.int8)
    for row in np.nonzero(ambiguous)[0]:
        signs[row] = _exact_incircle_row(
            ax[row], ay[row], bx[row], by[row],
            cx[row], cy[row], dx[row], dy[row],
        )
    return signs, ambiguous


def segments_cross_batch(px1, py1, qx1, qy1, px2, py2, qx2, qy2, mask=None):
    """Elementwise :func:`segments_cross` over coordinate arrays.

    The general-position fast path (endpoint-distinct, no collinear
    orientation) is decided fully vectorized; rows with any collinear
    orientation code fall back to the scalar function, whose
    touch/overlap branch is the semantics.  ``mask`` (optional)
    restricts which rows are evaluated; unevaluated rows return False.
    """
    from repro.core.compat import np

    if mask is None:
        mask = np.ones(px1.shape[0], dtype=bool)
    same = (
        ((px1 == px2) & (py1 == py2))
        | ((px1 == qx2) & (py1 == qy2))
        | ((qx1 == px2) & (qy1 == py2))
        | ((qx1 == qx2) & (qy1 == qy2))
    )
    o1 = orientation_codes_batch(px1, py1, qx1, qy1, px2, py2)
    o2 = orientation_codes_batch(px1, py1, qx1, qy1, qx2, qy2)
    o3 = orientation_codes_batch(px2, py2, qx2, qy2, px1, py1)
    o4 = orientation_codes_batch(px2, py2, qx2, qy2, qx1, qy1)
    anycol = (o1 == 0) | (o2 == 0) | (o3 == 0) | (o4 == 0)
    res = mask & ~same & ~anycol & (o1 != o2) & (o3 != o4)
    for row in np.nonzero(mask & ~same & anycol)[0]:
        res[row] = segments_cross(
            Point(float(px1[row]), float(py1[row])),
            Point(float(qx1[row]), float(qy1[row])),
            Point(float(px2[row]), float(py2[row])),
            Point(float(qx2[row]), float(qy2[row])),
        )
    return res


def point_in_polygon(point: Point, polygon: Sequence[Point]) -> bool:
    """Even–odd test for ``point`` inside a simple ``polygon``.

    Points exactly on the boundary may be classified either way; the
    spanner code never depends on boundary classification.
    """
    inside = False
    n = len(polygon)
    px, py = point
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        if (y1 > py) != (y2 > py):
            x_cross = x1 + (py - y1) * (x2 - x1) / (y2 - y1)
            if px < x_cross:
                inside = not inside
    return inside
