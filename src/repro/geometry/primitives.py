"""Basic planar geometry: points, distances and angles.

A :class:`Point` is an immutable pair of floats.  All higher layers
(unit disk graphs, spanner constructions, routing) work with sequences
of points indexed by integer node id, so the functions here are kept
free of any graph-level concepts.
"""

from __future__ import annotations

import math
from typing import Iterator, NamedTuple, Sequence


class Point(NamedTuple):
    """An immutable point in the plane.

    Being a :class:`~typing.NamedTuple` it unpacks like a pair, hashes
    by value and is cheap enough to use by the hundreds of thousands.
    """

    x: float
    y: float

    def __add__(self, other: object) -> "Point":  # type: ignore[override]
        if not isinstance(other, tuple) or len(other) != 2:
            return NotImplemented
        return Point(self.x + other[0], self.y + other[1])

    def __sub__(self, other: object) -> "Point":
        if not isinstance(other, tuple) or len(other) != 2:
            return NotImplemented
        return Point(self.x - other[0], self.y - other[1])

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin by ``factor``."""
        return Point(self.x * factor, self.y * factor)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def dist_sq(p: Point, q: Point) -> float:
    """Squared Euclidean distance between ``p`` and ``q``.

    Preferred over :func:`dist` in comparisons: it avoids the square
    root and therefore both a little time and a little rounding.
    """
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def dist(p: Point, q: Point) -> float:
    """Euclidean distance between ``p`` and ``q``."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def midpoint(p: Point, q: Point) -> Point:
    """Midpoint of segment ``pq``."""
    return Point((p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0)


def angle_at(apex: Point, p: Point, q: Point) -> float:
    """Angle ``p–apex–q`` in radians, in ``[0, pi]``.

    Raises :class:`ValueError` when either arm is degenerate (``p`` or
    ``q`` coincides with ``apex``) because the angle is then undefined.
    """
    ax, ay = p[0] - apex[0], p[1] - apex[1]
    bx, by = q[0] - apex[0], q[1] - apex[1]
    na = math.hypot(ax, ay)
    nb = math.hypot(bx, by)
    if na == 0.0 or nb == 0.0:
        raise ValueError("angle undefined: an arm of the angle has zero length")
    cosine = (ax * bx + ay * by) / (na * nb)
    cosine = max(-1.0, min(1.0, cosine))
    return math.acos(cosine)


def polygon_area(vertices: Sequence[Point]) -> float:
    """Signed area of a simple polygon (positive when counter-clockwise)."""
    area = 0.0
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        area += x1 * y2 - x2 * y1
    return area / 2.0


def iter_points(coords: Sequence[tuple[float, float]]) -> Iterator[Point]:
    """Yield :class:`Point` objects for raw coordinate pairs."""
    for x, y in coords:
        yield Point(float(x), float(y))


def as_points(coords: Sequence[tuple[float, float]]) -> list[Point]:
    """Materialize raw coordinate pairs as a list of :class:`Point`."""
    return list(iter_points(coords))
