"""Computational-geometry substrate.

Everything the spanner constructions need: points and distances
(:mod:`~repro.geometry.primitives`), robust orientation / in-circle
predicates (:mod:`~repro.geometry.predicates`), circumcircles and
empty-disk tests (:mod:`~repro.geometry.circle`), convex hulls
(:mod:`~repro.geometry.hull`) and a from-scratch Delaunay triangulation
(:mod:`~repro.geometry.triangulation`).
"""

from repro.geometry.primitives import (
    Point,
    angle_at,
    dist,
    dist_sq,
    midpoint,
    polygon_area,
)
from repro.geometry.predicates import (
    Orientation,
    in_circle,
    orientation,
    segments_cross,
    segments_intersect,
)
from repro.geometry.circle import (
    Circle,
    circumcircle,
    disk_contains,
    gabriel_disk_empty,
    point_in_circumcircle,
)
from repro.geometry.hull import convex_hull
from repro.geometry.triangulation import Triangulation, delaunay
from repro.geometry.transforms import (
    mirror_x,
    normalize_to_unit_square,
    rotate,
    scale,
    translate,
)

__all__ = [
    "Point",
    "angle_at",
    "dist",
    "dist_sq",
    "midpoint",
    "polygon_area",
    "Orientation",
    "orientation",
    "in_circle",
    "segments_cross",
    "segments_intersect",
    "Circle",
    "circumcircle",
    "disk_contains",
    "gabriel_disk_empty",
    "point_in_circumcircle",
    "convex_hull",
    "Triangulation",
    "delaunay",
    "mirror_x",
    "normalize_to_unit_square",
    "rotate",
    "scale",
    "translate",
]
