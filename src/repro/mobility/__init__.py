"""Node mobility and incremental backbone maintenance.

The paper argues its topology "can be constructed locally and is easy
to maintain when the nodes move around" and leaves dynamic updating as
future work; this package supplies the machinery to study that claim:
a random-waypoint mobility model (:mod:`~repro.mobility.waypoint`) and
an incremental maintainer that repairs the backbone after movement and
reports how much of it had to change (:mod:`~repro.mobility.maintenance`).
"""

from repro.mobility.waypoint import RandomWaypointModel
from repro.mobility.maintenance import BackboneMaintainer, MaintenanceReport
from repro.mobility.session import (
    SessionResult,
    SessionStep,
    run_mobility_session,
)
from repro.mobility.local_repair import RepairReport, localized_repair

__all__ = [
    "RandomWaypointModel",
    "BackboneMaintainer",
    "MaintenanceReport",
    "SessionResult",
    "SessionStep",
    "run_mobility_session",
    "RepairReport",
    "localized_repair",
]
