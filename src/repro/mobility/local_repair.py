"""Localized backbone repair — the paper's future-work problem, built.

The paper closes with: "Another interesting open problem is to study
the dynamic updating of the planar backbone efficiently when nodes are
moving."  :class:`~repro.mobility.maintenance.BackboneMaintainer`
implements the conservative policy (full rebuild on any structural
break); this module implements the *localized* alternative and
quantifies what it saves.

Strategy — repair only the affected region, keep everything else:

1. **Scope.**  Diff the old and new unit disk graphs; the *dirty* set
   is every node whose radio neighborhood changed, dilated by ``halo``
   hops (default 2 — clustering and connector decisions depend on at
   most 2-hop information).
2. **Role repair.**  Roles outside the dirty set are frozen.  Inside,
   roles are re-derived with the same lowest-ID greedy the election
   protocol converges to, *seeded* with the frozen outside dominators
   (an outside dominator adjacent to a dirty node keeps dominating
   it).
3. **Structure repair.**  Connectors and the localized Delaunay
   structures are recomputed — both are functions of 2-hop-local
   state, so recomputing them globally over the repaired roles equals
   recomputing them only where inputs changed; the implementation
   reuses the centralized builders and the *savings* are measured by
   the dirty-set size, which is what a deployed incremental protocol
   would transmit.
4. **Validation.**  The repaired structure is checked against the
   paper's invariants (domination, independence, CDS connectivity per
   component, planarity).  If any check fails — possible when churn
   cascades beyond the halo — the repair *escalates to a full
   rebuild*, so correctness never depends on the locality heuristic.

The result carries ``dirty_fraction`` and ``escalated`` so experiments
can report how often locality sufficed and how much of the network a
real incremental protocol would have touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.spanner import BackboneResult, build_backbone
from repro.geometry.primitives import Point
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one localized repair."""

    #: Nodes whose neighborhood changed (before dilation).
    changed_nodes: frozenset[int]
    #: The dilated repair region.
    dirty_nodes: frozenset[int]
    #: Fraction of the network the repair touched.
    dirty_fraction: float
    #: Whether validation forced a full rebuild.
    escalated: bool
    #: Role changes relative to the previous backbone.
    role_changes: tuple[int, ...]
    result: BackboneResult


def changed_neighborhoods(
    old_udg: UnitDiskGraph, new_udg: UnitDiskGraph
) -> frozenset[int]:
    """Nodes whose radio neighbor set differs between the two UDGs."""
    return frozenset(
        u
        for u in old_udg.nodes()
        if old_udg.neighbors(u) != new_udg.neighbors(u)
    )


def dilate(udg: UnitDiskGraph, seed_nodes: frozenset[int], hops: int) -> frozenset[int]:
    """``seed_nodes`` plus everything within ``hops`` of them."""
    dirty = set(seed_nodes)
    frontier = set(seed_nodes)
    for _ in range(hops):
        nxt: set[int] = set()
        for u in frontier:
            nxt |= udg.neighbors(u)
        nxt -= dirty
        if not nxt:
            break
        dirty |= nxt
        frontier = nxt
    return frozenset(dirty)


def repair_roles(
    new_udg: UnitDiskGraph,
    old_result: BackboneResult,
    dirty: frozenset[int],
) -> frozenset[int]:
    """Re-elect dominators inside ``dirty``, frozen outside.

    Greedy lowest-ID over the dirty nodes, seeded by the adjacency of
    frozen outside dominators — the fixed point the distributed
    election would reach if only dirty nodes re-ran it.
    """
    frozen_dominators = {
        u for u in old_result.dominators if u not in dirty
    }
    dominated: set[int] = set()
    for d in frozen_dominators:
        dominated.add(d)
        dominated |= new_udg.neighbors(d)

    dominators = set(frozen_dominators)
    for u in sorted(dirty):
        if u in dominated:
            continue
        # Independence against ALL current dominators.
        if new_udg.neighbors(u) & dominators:
            dominated.add(u)
            continue
        dominators.add(u)
        dominated.add(u)
        dominated |= new_udg.neighbors(u)
    return frozenset(dominators)


def _roles_valid(udg: UnitDiskGraph, dominators: frozenset[int]) -> bool:
    """Independence + domination of the whole graph."""
    for d in dominators:
        if udg.neighbors(d) & dominators:
            return False
    for u in udg.nodes():
        if u not in dominators and not (udg.neighbors(u) & dominators):
            return False
    return True


def _structure_valid(result: BackboneResult) -> bool:
    """The paper's structural invariants on a built result."""
    if not is_planar_embedding(result.ldel_icds):
        return False
    # Per-component connectivity of the spanning structure.
    udg = result.udg
    from repro.graphs.paths import connected_components

    udg_components = {
        frozenset(c) for c in connected_components(udg) if len(c) > 1
    }
    spanning_components = {
        frozenset(c)
        for c in connected_components(result.ldel_icds_prime)
    }
    for component in udg_components:
        if not any(component <= sc for sc in spanning_components):
            return False
    return True


def localized_repair(
    old_result: BackboneResult,
    positions: Sequence[Point],
    *,
    halo: int = 2,
) -> RepairReport:
    """Repair ``old_result`` for the new ``positions``, locally if possible."""
    if len(positions) != old_result.udg.node_count:
        raise ValueError("position update must cover every node")
    radius = old_result.udg.radius
    new_udg = UnitDiskGraph([Point(p[0], p[1]) for p in positions], radius)

    changed = changed_neighborhoods(old_result.udg, new_udg)
    if not changed:
        return RepairReport(
            changed_nodes=frozenset(),
            dirty_nodes=frozenset(),
            dirty_fraction=0.0,
            escalated=False,
            role_changes=(),
            result=old_result,
        )
    dirty = dilate(new_udg, changed, halo)
    dirty_fraction = len(dirty) / new_udg.node_count

    dominators = repair_roles(new_udg, old_result, dirty)
    escalated = not _roles_valid(new_udg, dominators)

    if not escalated:
        # Rebuild the downstream structures with the repaired roles:
        # clustering is injected, connectors/LDel recompute (their
        # inputs are 2-hop local, so only dirty-region outputs change).
        result = _rebuild_with_dominators(new_udg, dominators)
        if not _structure_valid(result):
            escalated = True
    if escalated:
        result = build_backbone(list(new_udg.positions), radius)

    role_changes = tuple(
        u
        for u in new_udg.nodes()
        if old_result.role_of(u) != result.role_of(u)
    )
    return RepairReport(
        changed_nodes=changed,
        dirty_nodes=dirty,
        dirty_fraction=dirty_fraction,
        escalated=escalated,
        role_changes=role_changes,
        result=result,
    )


def _rebuild_with_dominators(
    udg: UnitDiskGraph, dominators: frozenset[int]
) -> BackboneResult:
    """Run the pipeline with an injected (repaired) dominator set."""
    from repro.core.spanner import BackboneResult as _BR
    from repro.protocols.backbone import run_backbone_pipeline
    from repro.protocols.clustering import ClusteringOutcome
    from repro.sim.stats import MessageStats

    dominators_of = {
        u: frozenset(udg.neighbors(u) & dominators)
        for u in udg.nodes()
        if u not in dominators
    }
    clustering = ClusteringOutcome(
        dominators=dominators,
        dominators_of=dominators_of,
        rounds=0,
        stats=MessageStats(),
    )
    pipeline = run_backbone_pipeline(udg, clustering=clustering)
    family = pipeline.family
    return _BR(
        udg=udg,
        dominators=family.dominators,
        connectors=family.connectors,
        dominatees=family.dominatees,
        cds=family.cds,
        cds_prime=family.cds_prime,
        icds=family.icds,
        icds_prime=family.icds_prime,
        ldel_icds=pipeline.ldel_icds,
        ldel_icds_prime=pipeline.ldel_icds_prime,
        stats_cds=pipeline.stats_cds,
        stats_icds=pipeline.stats_icds,
        stats_ldel=pipeline.stats_ldel,
        pipeline=pipeline,
    )
