"""Random-waypoint mobility.

Each node picks a uniform destination in the region, moves toward it
at a per-trip uniform speed, pauses, and repeats — the standard ad hoc
network mobility benchmark.  :meth:`RandomWaypointModel.step` advances
the world clock and returns the new positions, which the maintenance
experiments feed into :class:`~repro.mobility.maintenance.BackboneMaintainer`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.geometry.primitives import Point, dist


@dataclass
class _NodeMotion:
    position: Point
    destination: Point
    speed: float
    pause_left: float


class RandomWaypointModel:
    """Random-waypoint motion for a set of nodes in a square region.

    ``rng`` accepts either a :class:`random.Random` instance or a bare
    integer seed; passing the same seed (and issuing the same sequence
    of :meth:`step` calls) reproduces the trace bit-for-bit, which is
    what makes the incremental benchmarks and CI smoke jobs
    deterministic.
    """

    def __init__(
        self,
        initial: Sequence[Point],
        side: float,
        rng: Union[random.Random, int],
        *,
        speed_range: tuple[float, float] = (1.0, 5.0),
        pause_range: tuple[float, float] = (0.0, 2.0),
    ) -> None:
        if speed_range[0] <= 0.0 or speed_range[0] > speed_range[1]:
            raise ValueError("speed_range must be positive and ordered")
        if pause_range[0] < 0.0 or pause_range[0] > pause_range[1]:
            raise ValueError("pause_range must be non-negative and ordered")
        self.side = side
        self._rng = random.Random(rng) if isinstance(rng, int) else rng
        self._speed_range = speed_range
        self._pause_range = pause_range
        self._nodes = [
            _NodeMotion(
                position=Point(p[0], p[1]),
                destination=self._random_point(),
                speed=self._random_speed(),
                pause_left=0.0,
            )
            for p in initial
        ]
        self.time = 0.0

    def _random_point(self) -> Point:
        return Point(
            self._rng.uniform(0.0, self.side), self._rng.uniform(0.0, self.side)
        )

    def _random_speed(self) -> float:
        return self._rng.uniform(*self._speed_range)

    def positions(self) -> list[Point]:
        return [n.position for n in self._nodes]

    def step(self, dt: float, nodes: Optional[Sequence[int]] = None) -> list[Point]:
        """Advance nodes by ``dt`` time units; returns all new positions.

        ``nodes`` restricts motion to a subset of node indices (the
        event-stream experiments move a few nodes per step and keep the
        rest parked); the default advances everyone.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        moving = self._nodes if nodes is None else [self._nodes[i] for i in nodes]
        for node in moving:
            remaining = dt
            while remaining > 1e-12:
                if node.pause_left > 0.0:
                    wait = min(node.pause_left, remaining)
                    node.pause_left -= wait
                    remaining -= wait
                    continue
                gap = dist(node.position, node.destination)
                if gap <= 1e-12:
                    node.destination = self._random_point()
                    node.speed = self._random_speed()
                    node.pause_left = self._rng.uniform(*self._pause_range)
                    continue
                travel = node.speed * remaining
                if travel >= gap:
                    node.position = node.destination
                    remaining -= gap / node.speed
                else:
                    frac = travel / gap
                    node.position = Point(
                        node.position[0]
                        + frac * (node.destination[0] - node.position[0]),
                        node.position[1]
                        + frac * (node.destination[1] - node.position[1]),
                    )
                    remaining = 0.0
        self.time += dt
        return self.positions()
