"""Incremental backbone maintenance under mobility.

The paper's observation: while nodes move, the *logical* backbone
stays valid as long as none of its links stretches beyond the
transmission radius — the physical drawing may momentarily be
non-planar, but routing state need not change.  The maintainer
implements that policy with one correction: besides breakage it also
watches the appearing UDG links that *invalidate* what is being
maintained — a new link between two backbone nodes changes the
induced subgraph the planarized LDel was computed over (stale spanner
membership), and a new link crossing a structural link breaks the
planarity of the maintained embedding.  Either triggers a rebuild;
benign gains (a fresh dominatee link with no crossing) still do not,
unless ``watch_gains=True`` opts into the healing policy.  Reports
carry how much of the structure actually changed (edge churn, role
churn) — the quantities the mobility example and the maintenance
tests examine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.spanner import BackboneResult, build_backbone
from repro.geometry.predicates import segments_cross
from repro.geometry.primitives import Point, dist


@dataclass(frozen=True)
class MaintenanceReport:
    """What one position update did to the backbone."""

    #: Structural links whose endpoints drifted out of range.
    broken_links: tuple[tuple[int, int], ...]
    #: Whether a rebuild was triggered.
    rebuilt: bool
    #: Fraction of old backbone edges surviving into the new backbone
    #: (1.0 when no rebuild happened).
    edge_retention: float
    #: Nodes whose role (dominator/connector/dominatee) changed.
    role_changes: tuple[int, ...]
    #: The current (possibly new) backbone.
    result: BackboneResult
    #: Appearing UDG links that invalidated the maintained structure
    #: (backbone-backbone adjacency, or a crossing with a structural
    #: link) and therefore forced the rebuild.
    invalidating_links: tuple[tuple[int, int], ...] = ()


class BackboneMaintainer:
    """Keeps a backbone valid across position updates."""

    def __init__(self, result: BackboneResult) -> None:
        self.result = result
        self.radius = result.udg.radius
        self.rebuild_count = 0
        self.update_count = 0

    def structural_links(self) -> frozenset[tuple[int, int]]:
        """The links whose breakage forces a rebuild.

        The routed structure is LDel(ICDS') — the planar backbone plus
        every dominatee-to-dominator link — so those are the links
        being watched.
        """
        return self.result.ldel_icds_prime.edge_set()

    def check(self, positions: Sequence[Point]) -> tuple[tuple[int, int], ...]:
        """Structural links broken at the given ``positions``."""
        broken = [
            (u, v)
            for u, v in sorted(self.structural_links())
            if dist(positions[u], positions[v]) > self.radius
        ]
        return tuple(broken)

    def new_links(self, positions: Sequence[Point]) -> tuple[tuple[int, int], ...]:
        """UDG links available at ``positions`` that the old UDG lacked."""
        from repro.graphs.udg import UnitDiskGraph

        new_udg = UnitDiskGraph(list(positions), self.radius)
        gained = sorted(new_udg.edge_set() - self.result.udg.edge_set())
        return tuple(gained)

    def invalidating_links(
        self, positions: Sequence[Point]
    ) -> tuple[tuple[int, int], ...]:
        """Appearing UDG links that invalidate the maintained structure."""
        return self._filter_invalidating(self.new_links(positions), positions)

    def _filter_invalidating(
        self,
        gained: Sequence[tuple[int, int]],
        positions: Sequence[Point],
    ) -> tuple[tuple[int, int], ...]:
        """The subset of ``gained`` links the break-only policy must not ignore.

        A link that newly comes into range can invalidate the
        maintained structure even while every structural link still
        holds:

        * both endpoints are backbone nodes — the induced subgraph
          PLDel/ICDS were computed over gained an edge, so the cached
          planarization and spanner membership are stale;
        * the link's segment properly crosses a structural link — the
          maintained embedding is no longer planar at these positions.
        """
        if not gained:
            return ()
        backbone_nodes = self.result.dominators | self.result.connectors
        structural = sorted(self.structural_links())
        invalidating: list[tuple[int, int]] = []
        for u, v in gained:
            if u in backbone_nodes and v in backbone_nodes:
                invalidating.append((u, v))
                continue
            pu, pv = positions[u], positions[v]
            if any(
                a not in (u, v)
                and b not in (u, v)
                and segments_cross(pu, pv, positions[a], positions[b])
                for a, b in structural
            ):
                invalidating.append((u, v))
        return tuple(invalidating)

    def update(
        self, positions: Sequence[Point], *, watch_gains: bool = False
    ) -> MaintenanceReport:
        """Apply a position update; rebuild when the structure is invalid.

        The paper's policy watches only *breakage*: as long as every
        structural link holds, the logical backbone stays valid and
        nothing happens.  Two classes of *appearing* link are watched
        on top of that, because ignoring them leaves the maintained
        structure wrong rather than merely suboptimal: new
        backbone-backbone adjacency (stale PLDel/ICDS membership) and
        new links crossing a structural link (broken planarity) — see
        :meth:`invalidating_links`.  The remaining blind spot —
        demonstrated by the partition tests — is **healing**: benign
        links that newly come into range (e.g. two partitions drifting
        back together) are never exploited.  ``watch_gains=True``
        closes it by also rebuilding when the radio graph gained any
        link at all.
        """
        if len(positions) != self.result.udg.node_count:
            raise ValueError("position update must cover every node")
        self.update_count += 1
        broken = self.check(positions)
        gained = self.new_links(positions)
        invalidating = self._filter_invalidating(gained, positions)
        gains_trigger = watch_gains and bool(gained)
        if not broken and not invalidating and not gains_trigger:
            return MaintenanceReport(
                broken_links=(),
                rebuilt=False,
                edge_retention=1.0,
                role_changes=(),
                result=self.result,
            )

        old = self.result
        old_edges = old.ldel_icds_prime.edge_set()
        new = build_backbone(positions, self.radius)
        self.result = new
        self.rebuild_count += 1

        new_edges = new.ldel_icds_prime.edge_set()
        retention = (
            len(old_edges & new_edges) / len(old_edges) if old_edges else 1.0
        )
        role_changes = tuple(
            node
            for node in new.udg.nodes()
            if old.role_of(node) != new.role_of(node)
        )
        return MaintenanceReport(
            broken_links=broken,
            rebuilt=True,
            edge_retention=retention,
            role_changes=role_changes,
            result=new,
            invalidating_links=invalidating,
        )
