"""Mobility sessions: time-series analysis of a moving network.

Drives a mobility model and a :class:`~repro.mobility.maintenance.BackboneMaintainer`
together over many steps and collects the quantities the paper's
maintenance discussion cares about: how often structural links break,
how much of the backbone survives each repair, and whether routing
stayed available throughout — packaged so examples and tests consume
one object instead of re-implementing the loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.spanner import build_backbone
from repro.mobility.maintenance import BackboneMaintainer
from repro.mobility.waypoint import RandomWaypointModel
from repro.routing.backbone_routing import backbone_route
from repro.workloads.generators import Deployment


@dataclass(frozen=True)
class SessionStep:
    """Measurements for one mobility step."""

    time: float
    broken_links: int
    rebuilt: bool
    edge_retention: float
    role_changes: int
    routable_probes: int
    total_probes: int


@dataclass(frozen=True)
class SessionResult:
    """A whole session's time series plus aggregates."""

    steps: tuple[SessionStep, ...]

    @property
    def rebuild_count(self) -> int:
        return sum(1 for s in self.steps if s.rebuilt)

    @property
    def rebuild_rate(self) -> float:
        if not self.steps:
            return 0.0
        return self.rebuild_count / len(self.steps)

    @property
    def mean_retention_on_rebuild(self) -> float:
        retentions = [s.edge_retention for s in self.steps if s.rebuilt]
        if not retentions:
            return 1.0
        return sum(retentions) / len(retentions)

    @property
    def availability(self) -> float:
        """Fraction of routing probes that delivered across the session."""
        total = sum(s.total_probes for s in self.steps)
        if total == 0:
            return 1.0
        return sum(s.routable_probes for s in self.steps) / total


def run_mobility_session(
    deployment: Deployment,
    *,
    steps: int,
    dt: float = 1.0,
    speed: float = 2.0,
    pause: float = 2.0,
    probe_pairs: Optional[Sequence[tuple[int, int]]] = None,
    seed: int = 0,
    policy: str = "full",
) -> SessionResult:
    """Run a random-waypoint session with maintenance and probing.

    ``probe_pairs`` are (source, target) routing checks performed on
    the *current* backbone after every update; defaults to three
    deterministic long-range pairs.  ``policy`` selects the
    maintenance strategy: ``"full"`` (the paper's break-triggered full
    rebuild) or ``"local"`` (the localized-repair extension, which
    also reports smaller effective churn).  ``pause`` caps the
    per-trip waypoint pause time.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if policy not in ("full", "local"):
        raise ValueError(f"unknown maintenance policy {policy!r}")
    n = len(deployment.points)
    if probe_pairs is None:
        probe_pairs = [(0, n - 1), (1, n // 2), (n // 3, n - 2)]
    probe_pairs = [(s, t) for s, t in probe_pairs if s != t]

    rng = random.Random(seed)
    result = build_backbone(deployment.points, deployment.radius)
    maintainer = BackboneMaintainer(result)
    model = RandomWaypointModel(
        list(deployment.points),
        deployment.side,
        rng,
        speed_range=(0.5 * speed, 1.5 * speed),
        pause_range=(0.0, max(pause, 0.0)),
    )

    records: list[SessionStep] = []
    current = result
    for _ in range(steps):
        positions = model.step(dt)
        if policy == "full":
            report = maintainer.update(positions)
            current = maintainer.result
            step_record = SessionStep(
                time=model.time,
                broken_links=len(report.broken_links),
                rebuilt=report.rebuilt,
                edge_retention=report.edge_retention,
                role_changes=len(report.role_changes),
                routable_probes=0,
                total_probes=len(probe_pairs),
            )
        else:
            from repro.mobility.local_repair import localized_repair

            old_edges = current.ldel_icds_prime.edge_set()
            repair = localized_repair(current, positions)
            current = repair.result
            new_edges = current.ldel_icds_prime.edge_set()
            retention = (
                len(old_edges & new_edges) / len(old_edges) if old_edges else 1.0
            )
            step_record = SessionStep(
                time=model.time,
                broken_links=len(repair.changed_nodes),
                rebuilt=bool(repair.changed_nodes),
                edge_retention=retention,
                role_changes=len(repair.role_changes),
                routable_probes=0,
                total_probes=len(probe_pairs),
            )
        routable = sum(
            backbone_route(current, s, t).delivered for s, t in probe_pairs
        )
        records.append(
            SessionStep(
                time=step_record.time,
                broken_links=step_record.broken_links,
                rebuilt=step_record.rebuilt,
                edge_retention=step_record.edge_retention,
                role_changes=step_record.role_changes,
                routable_probes=routable,
                total_probes=step_record.total_probes,
            )
        )
    return SessionResult(steps=tuple(records))
