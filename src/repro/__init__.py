"""repro — Geometric Spanners for Wireless Ad Hoc Networks (ICDCS 2002).

A full reproduction of Wang & Li's localized planar spanner backbone
for unit disk graphs: maximal-independent-set clustering, distributed
connector election, the CDS / ICDS family, and localized Delaunay
planarization — plus every baseline topology, a message-passing
simulator for communication-cost accounting, geographic routing, and
the paper's complete experiment suite.

Quickstart::

    import random
    from repro import build_backbone, uniform_points

    rng = random.Random(7)
    points = uniform_points(100, side=200.0, rng=rng)
    result = build_backbone(points, radius=60.0)
    print(result.ldel_icds.edge_count, "backbone edges")
"""

from repro.core.spanner import BackboneResult, build_backbone
from repro.core.metrics import (
    StretchStats,
    TopologyMetrics,
    degree_stats,
    hop_stretch,
    length_stretch,
    measure_topology,
    power_stretch,
    summarize_family,
)
from repro.core.oracle import DistanceOracle
from repro.graphs.udg import UnitDiskGraph, unit_disk_graph
from repro.workloads.generators import (
    clustered_points,
    connected_udg_instance,
    corridor_points,
    grid_points,
    uniform_points,
)

__version__ = "1.0.0"

__all__ = [
    "BackboneResult",
    "build_backbone",
    "StretchStats",
    "TopologyMetrics",
    "degree_stats",
    "DistanceOracle",
    "hop_stretch",
    "length_stretch",
    "measure_topology",
    "power_stretch",
    "summarize_family",
    "UnitDiskGraph",
    "unit_disk_graph",
    "clustered_points",
    "connected_udg_instance",
    "corridor_points",
    "grid_points",
    "uniform_points",
    "__version__",
]
