"""Dependency-free SVG rendering of deployments and topologies."""

from repro.viz.svg import render_backbone_svg, render_topology_svg

__all__ = ["render_backbone_svg", "render_topology_svg"]
