"""SVG rendering — the paper's Figures 6 and 7 as actual pictures.

Pure string generation, no plotting dependency: each topology becomes
one self-contained SVG document with nodes drawn by role (dominator /
connector / dominatee, the square-vs-circle convention of the paper's
Figure 3) and straight-line edges.  Viewable in any browser.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.spanner import BackboneResult
from repro.graphs.graph import Graph

_ROLE_STYLE: Mapping[str, tuple[str, str]] = {
    # role -> (fill color, shape)
    "dominator": ("#d62728", "square"),
    "connector": ("#ff7f0e", "square"),
    "dominatee": ("#1f77b4", "circle"),
    "plain": ("#444444", "circle"),
}


def _svg_header(width: float, height: float, title: str) -> list[str]:
    return [
        (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'viewBox="0 0 {width:.0f} {height:.0f}" '
            f'width="{width:.0f}" height="{height:.0f}">'
        ),
        f"<title>{title}</title>",
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
    ]


def _node_markup(x: float, y: float, role: str, radius: float) -> str:
    color, shape = _ROLE_STYLE.get(role, _ROLE_STYLE["plain"])
    if shape == "square":
        side = 2.0 * radius
        return (
            f'<rect x="{x - radius:.2f}" y="{y - radius:.2f}" '
            f'width="{side:.2f}" height="{side:.2f}" fill="{color}"/>'
        )
    return f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{radius:.2f}" fill="{color}"/>'


def render_topology_svg(
    graph: Graph,
    *,
    roles: Optional[Mapping[int, str]] = None,
    side: Optional[float] = None,
    canvas: float = 500.0,
    title: Optional[str] = None,
) -> str:
    """Render ``graph`` as a standalone SVG document string.

    ``roles`` maps node ids to 'dominator' / 'connector' / 'dominatee'
    for the paper's square/circle convention; unmapped nodes draw as
    plain circles.  ``side`` is the deployment region side (defaults
    to the bounding box of the positions).
    """
    positions = graph.positions
    if side is None:
        side = max(
            [1.0]
            + [p.x for p in positions]
            + [p.y for p in positions]
        ) * 1.05
    scale = canvas / side
    margin = 0.03 * canvas
    extent = canvas + 2 * margin

    def sx(x: float) -> float:
        return margin + x * scale

    def sy(y: float) -> float:
        # SVG's y axis grows downward; flip for the usual orientation.
        return margin + (side - y) * scale

    parts = _svg_header(extent, extent, title or graph.name)
    parts.append('<g stroke="#999999" stroke-width="1">')
    for u, v in sorted(graph.edges()):
        pu, pv = positions[u], positions[v]
        parts.append(
            f'<line x1="{sx(pu.x):.2f}" y1="{sy(pu.y):.2f}" '
            f'x2="{sx(pv.x):.2f}" y2="{sy(pv.y):.2f}"/>'
        )
    parts.append("</g>")
    node_radius = max(2.0, 0.006 * canvas)
    for node in graph.nodes():
        p = positions[node]
        role = (roles or {}).get(node, "plain")
        parts.append(_node_markup(sx(p.x), sy(p.y), role, node_radius))
    parts.append("</svg>")
    return "\n".join(parts)


def render_backbone_svg(
    result: BackboneResult,
    *,
    which: str = "ldel_icds_prime",
    canvas: float = 500.0,
) -> str:
    """Render one of a backbone result's graphs with role styling."""
    graph: Graph = getattr(result, which, None)
    if not isinstance(graph, Graph):
        raise ValueError(f"unknown backbone graph {which!r}")
    roles = {node: result.role_of(node) for node in result.udg.nodes()}
    side = max(
        [result.udg.radius]
        + [p.x for p in result.udg.positions]
        + [p.y for p in result.udg.positions]
    ) * 1.05
    return render_topology_svg(
        graph, roles=roles, side=side, canvas=canvas, title=graph.name
    )
