"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build`` — sample a connected deployment (or load one), run the
  full pipeline, print a summary, optionally export SVG renderings
  and JSON graph dumps.
* ``measure`` — Table-I-style quality metrics for one instance.
* ``route`` — route a packet between two nodes over the backbone.
* ``serve`` — run the long-lived spanner construction service (the
  cached, parallel HTTP serving layer in :mod:`repro.service`).
* ``mobility`` — drive a seeded random-waypoint trace through a
  maintenance policy: the paper's break-triggered full rebuild, the
  localized-repair extension, or the incremental maintenance engine
  (:mod:`repro.incremental`, with the rebuild-equivalence tripwire).
* ``experiments`` — regenerate the paper's tables/figures (delegates
  to :mod:`repro.experiments.harness`).
* ``validate`` — run the declarative invariant matrix over the
  scenario corpus (:mod:`repro.validation`); the nightly validation
  farm and the blocking PR job are this one command.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.metrics import measure_topology
from repro.core.spanner import BackboneResult, build_backbone
from repro.experiments.harness import main as harness_main
from repro.experiments.runner import STRETCH_TOPOLOGIES, build_all_topologies
from repro.graphs.planarity import is_planar_embedding
from repro.routing.backbone_routing import backbone_route
from repro.viz.svg import render_backbone_svg
from repro.workloads.generators import Deployment, connected_udg_instance
from repro.workloads.io import load_deployment, save_deployment, save_graph


def _add_deployment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--radius", type=float, default=60.0)
    parser.add_argument("--side", type=float, default=200.0)
    parser.add_argument("--seed", type=int, default=0)
    from repro.workloads.generators import GENERATORS, MODELS

    parser.add_argument(
        "--generator",
        choices=tuple(GENERATORS),
        default="uniform",
    )
    parser.add_argument(
        "--model",
        choices=MODELS,
        default="udg",
        help="radio model: sharp disk or quasi-UDG gray zone",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.75,
        help="quasi-UDG reliable-zone fraction of the radius",
    )
    parser.add_argument(
        "--load", type=Path, default=None, help="load a saved deployment JSON"
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="NAME[/INDEX]",
        help="use a canonical corpus instance (see `python -m repro corpus`)",
    )


def _get_deployment(args: argparse.Namespace) -> Deployment:
    if args.load is not None:
        return load_deployment(args.load)
    if args.corpus is not None:
        from repro.workloads.corpus import get_instance

        name, _, index = args.corpus.partition("/")
        return get_instance(name, int(index) if index else 0)
    rng = random.Random(args.seed)
    return connected_udg_instance(
        args.nodes,
        args.side,
        args.radius,
        rng,
        generator=args.generator,
        model=getattr(args, "model", "udg"),
        epsilon=getattr(args, "epsilon", 0.75),
    )


def _summarize(result: BackboneResult) -> None:
    udg = result.udg
    print(f"nodes: {udg.node_count}, UDG links: {udg.edge_count}")
    print(
        f"roles: {len(result.dominators)} dominators, "
        f"{len(result.connectors)} connectors, "
        f"{len(result.dominatees)} dominatees"
    )
    print(
        f"LDel(ICDS): {result.ldel_icds.edge_count} edges, planar: "
        f"{is_planar_embedding(result.ldel_icds)}"
    )
    print(
        f"messages/node: CDS max {result.stats_cds.max_per_node()}, "
        f"pipeline max {result.stats_ldel.max_per_node()}, "
        f"pipeline avg {result.stats_ldel.avg_per_node(udg.node_count):.1f}"
    )


def cmd_build(args: argparse.Namespace) -> int:
    deployment = _get_deployment(args)
    result = build_backbone(deployment.points, deployment.radius)
    _summarize(result)
    if args.save_deployment:
        save_deployment(deployment, args.save_deployment)
        print(f"deployment saved to {args.save_deployment}")
    if args.out_dir:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for which in ("cds", "icds", "ldel_icds", "ldel_icds_prime"):
            svg = render_backbone_svg(result, which=which)
            path = args.out_dir / f"{which}.svg"
            path.write_text(svg)
            save_graph(getattr(result, which), args.out_dir / f"{which}.json")
        print(f"SVG + JSON written to {args.out_dir}/")
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    from repro.core.oracle import DistanceOracle

    deployment = _get_deployment(args)
    udg = deployment.udg()
    graphs, _ = build_all_topologies(udg)
    oracle = DistanceOracle(udg)  # shares the UDG matrices across rows
    print(f"{'topology':<12}{'edges':>7}{'deg_avg':>9}{'deg_max':>9}{'len_avg':>9}{'hop_avg':>9}")
    for name, graph in graphs.items():
        stretch = name in STRETCH_TOPOLOGIES
        metrics = measure_topology(
            graph,
            udg,
            stretch=stretch,
            skip_udg_adjacent=STRETCH_TOPOLOGIES.get(name, False),
            oracle=oracle,
        )
        len_avg = f"{metrics.length.avg:.3f}" if metrics.length else "-"
        hop_avg = f"{metrics.hops.avg:.3f}" if metrics.hops else "-"
        print(
            f"{name:<12}{metrics.edge_count:>7}{metrics.degree_avg:>9.2f}"
            f"{metrics.degree_max:>9}{len_avg:>9}{hop_avg:>9}"
        )
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    deployment = _get_deployment(args)
    result = build_backbone(deployment.points, deployment.radius)
    n = result.udg.node_count
    if not (0 <= args.source < n and 0 <= args.target < n):
        print(f"source/target must be in [0, {n})", file=sys.stderr)
        return 2
    route = backbone_route(result, args.source, args.target, mode=args.mode)
    status = "delivered" if route.delivered else f"FAILED ({route.reason})"
    print(f"{args.source} -> {args.target}: {status}")
    print(f"path ({route.hops} hops): {' -> '.join(map(str, route.path))}")
    if route.delivered:
        print(f"path length: {route.length(result.udg):.1f}")
    return 0 if route.delivered else 1


def cmd_serve(args: argparse.Namespace) -> int:
    service_kwargs = dict(
        cache_size=args.cache_size,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
        executor_mode=args.executor,
        max_workers=args.workers,
        task_timeout=args.task_timeout,
        data_dir=str(args.data_dir) if args.data_dir else None,
    )
    if getattr(args, "use_async", False):
        from repro.service.aserver import serve_async

        return serve_async(
            args.host,
            args.port,
            pool_size=args.pool_workers,
            pool_mode=args.pool_mode,
            queue_depth=args.queue_depth,
            **service_kwargs,
        )
    from repro.service.server import serve

    return serve(args.host, args.port, **service_kwargs)


def cmd_mobility(args: argparse.Namespace) -> int:
    deployment = _get_deployment(args)
    trace_seed = args.trace_seed if args.trace_seed is not None else args.seed
    if args.policy == "incremental":
        from repro.incremental.session import run_incremental_session

        result = run_incremental_session(
            deployment,
            steps=args.steps,
            dt=args.dt,
            speed=args.speed,
            pause=args.pause,
            move_fraction=args.move_fraction,
            seed=trace_seed,
            verify_every=args.verify_every,
            tile_cells=args.tile_cells,
        )
        counters = result.counters
        print(
            f"incremental session: n={result.node_count}, "
            f"{counters['steps']} steps, {counters['events']} events"
        )
        print(
            f"links: +{counters['appeared_links']} -{counters['vanished_links']}, "
            f"role changes: {counters['role_changes']}, repairs: "
            f"{counters['repairs_certified']} certified / "
            f"{counters['repairs_fallback']} fallback"
        )
        print(
            f"dirty: {counters['dirty_tiles']} tiles, "
            f"{counters['dirty_nodes']} nodes "
            f"(mean fraction {result.mean_dirty_fraction:.4f})"
        )
        if args.verify_every > 0:
            word = "all identical" if result.all_verified else "MISMATCH"
            print(
                f"rebuild equivalence: {counters['verifications']} checks, {word}"
            )
        ok = result.all_verified
        if args.max_dirty_fraction is not None:
            if result.mean_dirty_fraction > args.max_dirty_fraction:
                print(
                    f"FAILED: mean dirty fraction {result.mean_dirty_fraction:.4f} "
                    f"exceeds --max-dirty-fraction {args.max_dirty_fraction}",
                    file=sys.stderr,
                )
                ok = False
        return 0 if ok else 1

    from repro.mobility.session import run_mobility_session

    result = run_mobility_session(
        deployment,
        steps=args.steps,
        dt=args.dt,
        speed=args.speed,
        pause=args.pause,
        seed=trace_seed,
        policy=args.policy,
    )
    print(
        f"{args.policy} session: {len(result.steps)} steps, "
        f"{result.rebuild_count} rebuilds (rate {result.rebuild_rate:.2f})"
    )
    print(
        f"mean retention on rebuild: {result.mean_retention_on_rebuild:.3f}, "
        f"routing availability: {result.availability:.3f}"
    )
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from repro.workloads.corpus import CORPUS

    print(
        f"{'name':<18}{'n':>5}{'side':>7}{'radius':>8}{'generator':>11}"
        f"{'model':>7}{'tags':>14}  description"
    )
    for name in sorted(CORPUS):
        entry = CORPUS[name]
        tags = ",".join(entry.tags) or "-"
        print(
            f"{entry.name:<18}{entry.n:>5}{entry.side:>7g}{entry.radius:>8g}"
            f"{entry.generator:>11}{entry.model:>7}{tags:>14}  {entry.description}"
        )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    import json

    from repro.validation.engine import run_validation

    try:
        matrix = run_validation(
            corpus=args.corpus or (),
            pipelines=args.pipeline or (),
            invariants=args.invariant or (),
            executor=args.executor,
            max_workers=args.workers,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.output:
        args.output.write_text(json.dumps(matrix.to_json_dict(), indent=1))
        print(f"matrix written to {args.output}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(matrix.to_json_dict(), indent=1))
    elif args.format == "markdown":
        print(matrix.to_markdown())
    else:
        print(matrix.to_text(), end="")
    if args.step_summary:
        import os

        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a") as fh:
                fh.write(matrix.to_markdown())
                fh.write("\n")
    return 0 if matrix.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    deployment = _get_deployment(args)
    text = generate_report(deployment, svg_dir=args.svg_dir)
    args.output.write_text(text)
    print(f"report written to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build the backbone, summarize it")
    _add_deployment_args(p_build)
    p_build.add_argument("--out-dir", type=Path, default=None)
    p_build.add_argument("--save-deployment", type=Path, default=None)
    p_build.set_defaults(func=cmd_build)

    p_measure = sub.add_parser("measure", help="Table-I metrics for one instance")
    _add_deployment_args(p_measure)
    p_measure.set_defaults(func=cmd_measure)

    p_route = sub.add_parser("route", help="route a packet over the backbone")
    _add_deployment_args(p_route)
    p_route.add_argument("source", type=int)
    p_route.add_argument("target", type=int)
    p_route.add_argument("--mode", choices=("gpsr", "greedy"), default="gpsr")
    p_route.set_defaults(func=cmd_route)

    p_report = sub.add_parser(
        "report", help="full Markdown report for one deployment"
    )
    _add_deployment_args(p_report)
    p_report.add_argument("--output", type=Path, default=Path("report.md"))
    p_report.add_argument("--svg-dir", type=Path, default=None)
    p_report.set_defaults(func=cmd_report)

    p_mob = sub.add_parser(
        "mobility", help="run a random-waypoint maintenance session"
    )
    _add_deployment_args(p_mob)
    p_mob.add_argument("--steps", type=int, default=50)
    p_mob.add_argument("--dt", type=float, default=1.0)
    p_mob.add_argument("--speed", type=float, default=2.0)
    p_mob.add_argument("--pause", type=float, default=1.0)
    p_mob.add_argument(
        "--move-fraction", type=float, default=0.05,
        help="share of nodes moved per step (incremental policy)",
    )
    p_mob.add_argument(
        "--trace-seed", type=int, default=None,
        help="mobility RNG seed (defaults to --seed)",
    )
    p_mob.add_argument(
        "--policy", choices=("full", "local", "incremental"), default="full",
        help="maintenance strategy driven by the trace",
    )
    p_mob.add_argument(
        "--verify-every", type=int, default=0,
        help="assert rebuild equivalence every k steps (incremental; 0=off)",
    )
    p_mob.add_argument(
        "--tile-cells", type=int, default=2,
        help="tile size (in radius cells) of the incremental grid",
    )
    p_mob.add_argument(
        "--max-dirty-fraction", type=float, default=None,
        help="fail when the mean dirty-node fraction exceeds this "
        "(incremental; the sublinearity tripwire in CI)",
    )
    p_mob.set_defaults(func=cmd_mobility)

    p_serve = sub.add_parser(
        "serve", help="run the spanner construction service (HTTP JSON API)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8972)
    p_serve.add_argument(
        "--cache-size", type=int, default=256, help="in-memory LRU entries"
    )
    p_serve.add_argument(
        "--cache-dir", type=Path, default=None, help="on-disk cache directory"
    )
    p_serve.add_argument(
        "--executor", choices=("process", "thread", "serial"), default="process"
    )
    p_serve.add_argument("--workers", type=int, default=None)
    p_serve.add_argument("--task-timeout", type=float, default=120.0)
    p_serve.add_argument(
        "--data-dir", type=Path, default=None,
        help="persistent state root (deployment store + shared disk cache)",
    )
    p_serve.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve through the asyncio front end + shared-nothing "
        "worker pool instead of the blocking server",
    )
    p_serve.add_argument(
        "--pool-workers", type=int, default=4,
        help="async tier: shared-nothing service workers",
    )
    p_serve.add_argument(
        "--pool-mode", choices=("process", "thread"), default="process",
        help="async tier: worker isolation (process falls back to thread)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=32,
        help="async tier: per-worker in-flight window before 429",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_corpus = sub.add_parser(
        "corpus", help="list the canonical instance corpus"
    )
    p_corpus.set_defaults(func=cmd_corpus)

    p_val = sub.add_parser(
        "validate",
        help="run the declarative invariant matrix over the corpus",
    )
    p_val.add_argument(
        "--corpus",
        action="append",
        default=None,
        metavar="NAME[/INDEX]|TAG",
        help="corpus entry, entry/index, or tag (repeatable; default: all)",
    )
    p_val.add_argument(
        "--pipeline",
        action="append",
        default=None,
        metavar="NAME",
        help="pipeline filter: udg, gg, ldel, backbone (repeatable)",
    )
    p_val.add_argument(
        "--invariant",
        action="append",
        default=None,
        metavar="NAME",
        help="invariant filter by name (repeatable; default: all)",
    )
    p_val.add_argument(
        "--format", choices=("text", "markdown", "json"), default="text"
    )
    p_val.add_argument(
        "--output", type=Path, default=None,
        help="also write the JSON matrix document to this path",
    )
    p_val.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial"
    )
    p_val.add_argument("--workers", type=int, default=None)
    p_val.add_argument(
        "--step-summary",
        action="store_true",
        help="append the markdown matrix to $GITHUB_STEP_SUMMARY when set",
    )
    p_val.set_defaults(func=cmd_validate)

    p_exp = sub.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    p_exp.add_argument("rest", nargs=argparse.REMAINDER)
    p_exp.set_defaults(func=lambda a: harness_main(a.rest or ["all", "--quick"]))

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
