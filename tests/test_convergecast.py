"""Tests for the convergecast (data aggregation) protocol."""


import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.convergecast import REPORT, TREE_BUILD, run_convergecast


def line_world(n):
    pts = [Point(float(i), 0.0) for i in range(n)]
    udg = UnitDiskGraph(pts, 1.0)
    return udg


class TestTreeBuilding:
    def test_bfs_parents_on_line(self):
        udg = line_world(5)
        out = run_convergecast(udg, udg, sink=0)
        assert out.parent == {1: 0, 2: 1, 3: 2, 4: 3}
        assert out.depth_of(4) == 4
        assert out.depth_of(0) == 0

    def test_middle_sink(self):
        udg = line_world(5)
        out = run_convergecast(udg, udg, sink=2)
        assert out.parent[1] == 2 and out.parent[3] == 2
        assert out.depth_of(0) == 2 and out.depth_of(4) == 2

    def test_detached_node_not_in_tree(self):
        pts = [Point(0, 0), Point(1, 0), Point(9, 9)]
        udg = UnitDiskGraph(pts, 1.5)
        out = run_convergecast(udg, udg, sink=0)
        assert 2 not in out.parent
        assert out.contributors == 2

    def test_depth_of_detached_raises(self):
        pts = [Point(0, 0), Point(9, 9)]
        udg = UnitDiskGraph(pts, 1.0)
        out = run_convergecast(udg, udg, sink=0)
        with pytest.raises(Exception):
            out.depth_of(1)


class TestAggregation:
    def test_count_aggregate(self, deployment, backbone):
        out = run_convergecast(backbone.cds_prime, backbone.udg, sink=0)
        assert out.contributors == backbone.udg.node_count
        assert out.value == pytest.approx(float(backbone.udg.node_count))

    def test_sum_aggregate_exact(self, deployment, backbone):
        n = backbone.udg.node_count
        readings = {u: float(u) for u in range(n)}
        out = run_convergecast(
            backbone.cds_prime, backbone.udg, sink=0, readings=readings
        )
        assert out.value == pytest.approx(sum(range(n)))

    def test_max_aggregate(self, deployment, backbone):
        n = backbone.udg.node_count
        readings = {u: float(u) for u in range(n)}
        out = run_convergecast(
            backbone.cds_prime, backbone.udg, sink=3,
            readings=readings, aggregator=max,
        )
        assert out.value == pytest.approx(float(n - 1))

    def test_single_node(self):
        udg = UnitDiskGraph([Point(0, 0)], 1.0)
        out = run_convergecast(udg, udg, sink=0, readings={0: 7.0})
        assert out.value == 7.0 and out.contributors == 1


class TestCost:
    def test_two_messages_per_node(self, deployment, backbone):
        # One TreeBuild + one Report per non-sink node; the sink sends
        # only its TreeBuild.
        out = run_convergecast(backbone.cds_prime, backbone.udg, sink=0)
        assert out.stats.max_per_node() <= 2
        n = backbone.udg.node_count
        assert out.stats.per_kind[TREE_BUILD] == n
        assert out.stats.per_kind[REPORT] == n - 1

    def test_cheaper_than_per_reading_unicast(self, deployment, backbone):
        # Convergecast: ~2n transmissions for all readings; unicast:
        # one per hop per reading.
        from repro.protocols.routing_protocol import run_routing_protocol

        n = backbone.udg.node_count
        out = run_convergecast(backbone.cds_prime, backbone.udg, sink=0)
        packets = [(u, 0) for u in range(1, n)]
        _outcomes, route_stats = run_routing_protocol(backbone, packets)
        assert out.stats.total < route_stats.per_kind["Data"]

    def test_rounds_scale_with_depth(self):
        shallow = run_convergecast(line_world(4), line_world(4), sink=0)
        deep = run_convergecast(line_world(12), line_world(12), sink=0)
        assert deep.rounds > shallow.rounds
