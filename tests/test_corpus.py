"""Tests for the canonical instance corpus."""

import pytest

from repro.graphs.paths import is_connected
from repro.workloads.corpus import CORPUS, get_instance


class TestCorpus:
    def test_all_entries_regenerate(self):
        for name, entry in CORPUS.items():
            if entry.n > 200:
                continue  # the dense entry is covered separately
            deployment = get_instance(name)
            assert len(deployment.points) == entry.n
            assert deployment.radius == entry.radius
            assert is_connected(deployment.udg())

    def test_deterministic(self):
        a = get_instance("paper-table1", 0)
        b = get_instance("paper-table1", 0)
        assert a.points == b.points

    def test_indices_differ(self):
        a = get_instance("paper-table1", 0)
        b = get_instance("paper-table1", 1)
        assert a.points != b.points

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_instance("paper-table9")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            get_instance("paper-table1", -1)

    def test_dense_entry(self):
        deployment = get_instance("paper-dense")
        assert len(deployment.points) == 500
        assert is_connected(deployment.udg())

    def test_table1_regime_matches_calibration(self):
        # The corpus instance reproduces the calibrated UDG regime:
        # ~21 average degree (DESIGN.md).
        udg = get_instance("paper-table1").udg()
        avg_degree = 2 * udg.edge_count / udg.node_count
        assert 15 < avg_degree < 28

    def test_descriptions_present(self):
        for entry in CORPUS.values():
            assert entry.description
