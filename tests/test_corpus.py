"""Tests for the canonical instance corpus."""

import json

import pytest

from repro.graphs.paths import is_connected
from repro.workloads.corpus import CORPUS, corpus_listing, get_instance, select_entries
from repro.workloads.generators import QuasiDeployment


class TestCorpus:
    def test_all_entries_regenerate(self):
        for name, entry in CORPUS.items():
            if entry.n > 200:
                continue  # the dense entry is covered separately
            deployment = get_instance(name)
            assert len(deployment.points) == entry.n
            assert deployment.radius == entry.radius
            assert is_connected(deployment.udg())

    def test_deterministic(self):
        a = get_instance("paper-table1", 0)
        b = get_instance("paper-table1", 0)
        assert a.points == b.points

    def test_indices_differ(self):
        a = get_instance("paper-table1", 0)
        b = get_instance("paper-table1", 1)
        assert a.points != b.points

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_instance("paper-table9")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            get_instance("paper-table1", -1)

    def test_dense_entry(self):
        deployment = get_instance("paper-dense")
        assert len(deployment.points) == 500
        assert is_connected(deployment.udg())

    def test_table1_regime_matches_calibration(self):
        # The corpus instance reproduces the calibrated UDG regime:
        # ~21 average degree (DESIGN.md).
        udg = get_instance("paper-table1").udg()
        avg_degree = 2 * udg.edge_count / udg.node_count
        assert 15 < avg_degree < 28

    def test_descriptions_present(self):
        for entry in CORPUS.values():
            assert entry.description

    def test_scenario_families_present(self):
        assert {
            "hotspot-mix", "density-gradient", "obstacle-cross",
            "mobility-rush", "quasi-field", "quasi-hotspots",
        } <= set(CORPUS)
        # The farm's coverage floor: >= 5 generator families, quasi included.
        assert len({e.generator for e in CORPUS.values()}) >= 5
        assert any(e.model == "quasi" for e in CORPUS.values())

    def test_quasi_entries_yield_quasi_deployments(self):
        deployment = get_instance("quasi-field")
        assert isinstance(deployment, QuasiDeployment)
        assert deployment.epsilon == CORPUS["quasi-field"].epsilon
        assert is_connected(deployment.udg())


class TestSelectEntries:
    def test_no_filter_selects_everything(self):
        selected = select_entries()
        assert [e.name for e, _ in selected] == sorted(CORPUS)
        assert all(index == 0 for _, index in selected)

    def test_smoke_tag_is_proper_subset(self):
        smoke = select_entries(["smoke"])
        assert 0 < len(smoke) < len(CORPUS)
        assert all("smoke" in entry.tags for entry, _ in smoke)
        assert any(entry.model == "quasi" for entry, _ in smoke)

    def test_name_with_index(self):
        [(entry, index)] = select_entries(["paper-sparse/3"])
        assert entry.name == "paper-sparse" and index == 3

    def test_duplicates_collapse(self):
        selected = select_entries(["paper-sparse", "smoke", "paper-sparse"])
        keys = [(entry.name, index) for entry, index in selected]
        assert len(keys) == len(set(keys))

    def test_unknown_filter_raises(self):
        with pytest.raises(KeyError):
            select_entries(["no-such-entry-or-tag"])


class TestCorpusListing:
    def test_json_ready_and_sorted(self):
        listing = corpus_listing()
        assert [e["name"] for e in listing] == sorted(CORPUS)
        json.dumps(listing)

    def test_quasi_knobs_only_on_quasi_entries(self):
        by_name = {e["name"]: e for e in corpus_listing()}
        assert by_name["quasi-field"]["epsilon"] == 0.75
        assert by_name["paper-sparse"]["epsilon"] is None
        assert by_name["paper-sparse"]["version"] == 1
