"""Tests for the beta-skeleton family."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.topology.beta_skeleton import beta_skeleton
from repro.topology.gabriel import gabriel_graph
from repro.topology.rng import relative_neighborhood_graph


class TestEndpointsOfTheFamily:
    def test_beta_one_is_gabriel(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            assert beta_skeleton(udg, 1.0).edge_set() == gabriel_graph(
                udg
            ).edge_set()

    def test_beta_two_is_rng(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            assert beta_skeleton(udg, 2.0).edge_set() == relative_neighborhood_graph(
                udg
            ).edge_set()


class TestMonotonicity:
    @pytest.mark.parametrize("pair", [(1.0, 1.3), (1.3, 1.7), (1.7, 2.0)])
    def test_larger_beta_means_fewer_edges(self, small_deployments, pair):
        lo, hi = pair
        for dep in small_deployments[:3]:
            udg = dep.udg()
            sparser = beta_skeleton(udg, hi)
            denser = beta_skeleton(udg, lo)
            assert sparser.is_subgraph_of(denser)


class TestValidation:
    def test_beta_below_one_rejected(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 2.0)
        with pytest.raises(ValueError):
            beta_skeleton(udg, 0.9)

    def test_beta_above_two_rejected(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 2.0)
        with pytest.raises(ValueError):
            beta_skeleton(udg, 2.5)


class TestForbiddenRegionGeometry:
    def test_midpoint_witness_blocks_everything(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.01)]
        udg = UnitDiskGraph(pts, 1.5)
        for beta in (1.0, 1.5, 2.0):
            assert not beta_skeleton(udg, beta).has_edge(0, 1)

    def test_witness_between_disk_and_lune(self):
        # w outside the diameter disk (dist 0.6 > 0.5 from the center)
        # but inside the lune (0.78 < |uv| from both endpoints): the
        # edge survives at beta=1 (Gabriel) and dies at beta=2 (RNG).
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.6)]
        udg = UnitDiskGraph(pts, 1.5)
        assert beta_skeleton(udg, 1.0).has_edge(0, 1)
        assert not beta_skeleton(udg, 2.0).has_edge(0, 1)

    def test_graph_name_records_beta(self, deployment):
        skeleton = beta_skeleton(deployment.udg(), 1.5)
        assert skeleton.name == "BetaSkeleton(1.5)"
