"""Unit + property tests for repro.graphs.udg."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point, dist
from repro.graphs.udg import GridIndex, UnitDiskGraph, unit_disk_graph

coords = st.floats(min_value=0.0, max_value=50.0, allow_nan=False).map(
    lambda v: round(v, 4)
)
point_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=40)


class TestGridIndex:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex([Point(0, 0)], 0.0)

    def test_within_matches_brute_force(self):
        rng = random.Random(5)
        pts = [Point(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(60)]
        index = GridIndex(pts, 3.0)
        for probe in pts[:10]:
            expected = {
                i for i, p in enumerate(pts) if dist(p, probe) <= 3.0
            }
            assert set(index.within(probe, 3.0)) == expected

    def test_within_radius_larger_than_cell(self):
        pts = [Point(float(i), 0.0) for i in range(10)]
        index = GridIndex(pts, 1.0)
        assert set(index.within(Point(0, 0), 4.5)) == {0, 1, 2, 3, 4}

    @given(point_lists)
    @settings(max_examples=25, deadline=None)
    def test_candidates_superset_of_true_neighbors(self, raw):
        pts = [Point(x, y) for x, y in raw]
        if not pts:
            return
        index = GridIndex(pts, 2.0)
        probe = pts[0]
        true_set = {i for i, p in enumerate(pts) if dist(p, probe) <= 2.0}
        assert true_set <= set(index.candidates_near(probe, 2.0))


class TestUnitDiskGraph:
    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            UnitDiskGraph([Point(0, 0)], 0.0)

    def test_edges_iff_within_radius(self):
        pts = [Point(0, 0), Point(1, 0), Point(2.5, 0)]
        udg = UnitDiskGraph(pts, 1.5)
        assert udg.has_edge(0, 1)
        assert udg.has_edge(1, 2)
        assert not udg.has_edge(0, 2)

    def test_boundary_distance_included(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 1.0)
        assert udg.has_edge(0, 1)

    @given(point_lists, st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, raw, radius):
        pts = [Point(x, y) for x, y in raw]
        udg = UnitDiskGraph(pts, radius)
        expected = {
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if dist(pts[i], pts[j]) <= radius
        }
        assert udg.edge_set() == expected

    def test_k_hop_neighborhood_on_path(self):
        pts = [Point(float(i), 0.0) for i in range(6)]
        udg = UnitDiskGraph(pts, 1.0)
        assert udg.k_hop_neighborhood(0, 1) == {0, 1}
        assert udg.k_hop_neighborhood(0, 2) == {0, 1, 2}
        assert udg.k_hop_neighborhood(2, 2) == {0, 1, 2, 3, 4}

    def test_k_hop_includes_self(self):
        udg = UnitDiskGraph([Point(0, 0)], 1.0)
        assert udg.k_hop_neighborhood(0, 3) == {0}

    def test_unit_disk_graph_helper(self):
        udg = unit_disk_graph([(0, 0), (0.5, 0)], radius=1.0)
        assert udg.edge_count == 1
        assert udg.radius == 1.0
