"""Unit tests for repro.graphs.graph.Graph."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph

SQUARE = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]


class TestConstruction:
    def test_empty_graph(self):
        g = Graph([])
        assert g.node_count == 0 and g.edge_count == 0

    def test_initial_edges(self):
        g = Graph(SQUARE, [(0, 1), (1, 2)])
        assert g.edge_count == 2
        assert g.has_edge(1, 0)

    def test_self_loop_rejected(self):
        g = Graph(SQUARE)
        with pytest.raises(ValueError):
            g.add_edge(2, 2)

    def test_out_of_range_edge_rejected(self):
        g = Graph(SQUARE)
        with pytest.raises(IndexError):
            g.add_edge(0, 9)

    def test_duplicate_edges_collapse(self):
        g = Graph(SQUARE)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.edge_count == 1


class TestEdgeOperations:
    def test_remove_edge(self):
        g = Graph(SQUARE, [(0, 1)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.degree(0) == 0

    def test_remove_missing_edge_is_noop(self):
        g = Graph(SQUARE, [(0, 1)])
        g.remove_edge(2, 3)
        assert g.edge_count == 1

    def test_neighbors(self):
        g = Graph(SQUARE, [(0, 1), (0, 2)])
        assert g.neighbors(0) == {1, 2}
        assert g.neighbors(3) == frozenset()

    def test_degrees(self):
        g = Graph(SQUARE, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees() == [3, 1, 1, 1]


class TestGeometryAccessors:
    def test_edge_length(self):
        g = Graph(SQUARE)
        assert g.edge_length(0, 2) == pytest.approx(2 ** 0.5)

    def test_total_edge_length(self):
        g = Graph(SQUARE, [(0, 1), (1, 2)])
        assert g.total_edge_length() == pytest.approx(2.0)


class TestStructureOperations:
    def test_copy_is_independent(self):
        g = Graph(SQUARE, [(0, 1)])
        h = g.copy(name="copy")
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert h.name == "copy"

    def test_is_subgraph_of(self):
        g = Graph(SQUARE, [(0, 1)])
        h = Graph(SQUARE, [(0, 1), (1, 2)])
        assert g.is_subgraph_of(h)
        assert not h.is_subgraph_of(g)

    def test_subgraph_remaps_ids(self):
        g = Graph(SQUARE, [(0, 1), (1, 2), (2, 3)])
        sub, remap = g.subgraph([1, 2, 3])
        assert sub.node_count == 3
        assert sub.has_edge(remap[1], remap[2])
        assert sub.has_edge(remap[2], remap[3])
        assert sub.edge_count == 2

    def test_subgraph_drops_outside_edges(self):
        g = Graph(SQUARE, [(0, 1), (2, 3)])
        sub, _ = g.subgraph([0, 1])
        assert sub.edge_count == 1

    def test_edge_set_is_frozen(self):
        g = Graph(SQUARE, [(0, 1)])
        edges = g.edge_set()
        assert edges == frozenset({(0, 1)})
        assert isinstance(edges, frozenset)
