"""Property-based tests for the routing stack.

Hypothesis generates deployments; every draw must satisfy the routing
invariants: GPSR delivers on every connected planar structure, paths
are genuine walks, greedy strictly shrinks the distance each hop, and
perimeter mode honours its resume contract.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point, dist
from repro.graphs.paths import bfs_hops, connected_components
from repro.graphs.udg import UnitDiskGraph
from repro.routing.compass import compass_route
from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import greedy_route
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import planar_local_delaunay_graph

deployments = st.lists(
    st.tuples(st.integers(0, 18), st.integers(0, 18)),
    min_size=4,
    max_size=22,
    unique=True,
).map(lambda pts: [Point(x / 2.0, y / 2.0) for x, y in pts])

RADIUS = 3.0

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def same_component_pairs(graph, limit=6):
    comps = [sorted(c) for c in connected_components(graph) if len(c) > 1]
    pairs = []
    for comp in comps:
        pairs.append((comp[0], comp[-1]))
        if len(comp) > 2:
            pairs.append((comp[1], comp[-1]))
    return pairs[:limit]


@slow
@given(deployments)
def test_gpsr_delivers_on_gabriel(points):
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    for s, t in same_component_pairs(gg):
        result = gpsr_route(gg, s, t)
        assert result.delivered, f"GPSR failed {s}->{t} on Gabriel"
        for a, b in zip(result.path, result.path[1:]):
            assert gg.has_edge(a, b)


@slow
@given(deployments)
def test_gpsr_delivers_on_pldel(points):
    udg = UnitDiskGraph(points, RADIUS)
    pldel = planar_local_delaunay_graph(udg).graph
    for s, t in same_component_pairs(pldel):
        result = gpsr_route(pldel, s, t)
        assert result.delivered, f"GPSR failed {s}->{t} on PLDel"


@slow
@given(deployments)
def test_greedy_strictly_decreases_distance(points):
    udg = UnitDiskGraph(points, RADIUS)
    for s, t in same_component_pairs(udg):
        result = greedy_route(udg, s, t)
        target = udg.positions[t]
        distances = [dist(udg.positions[n], target) for n in result.path]
        for a, b in zip(distances, distances[1:]):
            assert b < a + 1e-12


@slow
@given(deployments)
def test_routes_never_exceed_reasonable_hop_bounds(points):
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    for s, t in same_component_pairs(gg):
        result = gpsr_route(gg, s, t)
        if result.delivered:
            optimal = bfs_hops(gg, s)[t]
            assert result.hops <= 8 * optimal + 16


@slow
@given(deployments)
def test_compass_terminates(points):
    """Compass may fail on general graphs, but must never hang."""
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    for s, t in same_component_pairs(gg):
        result = compass_route(gg, s, t)
        assert result.reason in ("delivered", "stuck", "loop", "hop-limit")
        assert len(result.path) <= 4 * gg.node_count + 17
