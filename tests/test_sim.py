"""Tests for the message-passing simulator substrate."""

import random

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.sim.messages import Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.radio import BroadcastRadio
from repro.sim.stats import MessageStats


def line_udg(n, spacing=1.0, radius=1.0):
    return UnitDiskGraph([Point(i * spacing, 0.0) for i in range(n)], radius)


class TestMessage:
    def test_payload_access(self):
        msg = Message(kind="Hello", sender=3, payload={"x": 1})
        assert msg["x"] == 1
        assert msg.get("y", 9) == 9

    def test_frozen(self):
        msg = Message(kind="Hello", sender=0)
        with pytest.raises(AttributeError):
            msg.kind = "Other"


class TestMessageStats:
    def test_record_and_totals(self):
        stats = MessageStats()
        stats.record(0, "Hello")
        stats.record(0, "Hello")
        stats.record(1, "IamDominator")
        assert stats.total == 3
        assert stats.node_total(0) == 2
        assert stats.by_kind() == {"Hello": 2, "IamDominator": 1}

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MessageStats().record(0, "Hello", -1)

    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.record(0, "Hello")
        b.record(0, "Hello")
        b.record(1, "Status")
        a.merge(b)
        assert a.node_total(0) == 2 and a.node_total(1) == 1

    def test_copy_is_independent(self):
        a = MessageStats()
        a.record(0, "Hello")
        b = a.copy()
        b.record(0, "Hello")
        assert a.node_total(0) == 1 and b.node_total(0) == 2

    def test_max_and_avg(self):
        stats = MessageStats()
        stats.record(0, "Hello", 5)
        stats.record(1, "Hello", 1)
        assert stats.max_per_node() == 5
        assert stats.max_per_node(nodes=[1]) == 1
        assert stats.avg_per_node(3) == pytest.approx(2.0)
        assert stats.avg_per_node() == pytest.approx(3.0)

    def test_empty_stats(self):
        stats = MessageStats()
        assert stats.max_per_node() == 0
        assert stats.avg_per_node() == 0.0


class TestBroadcastRadio:
    def test_delivers_to_all_neighbors(self):
        udg = line_udg(3)
        radio = BroadcastRadio(udg)
        deliveries = radio.deliver(Message(kind="Hello", sender=1))
        assert sorted(r for r, _ in deliveries) == [0, 2]

    def test_no_delivery_to_self(self):
        udg = line_udg(2)
        radio = BroadcastRadio(udg)
        recipients = [r for r, _ in radio.deliver(Message(kind="Hello", sender=0))]
        assert recipients == [1]

    def test_invalid_loss_rate(self):
        udg = line_udg(2)
        with pytest.raises(ValueError):
            BroadcastRadio(udg, loss_rate=1.0)

    def test_lossy_radio_drops_some(self):
        udg = line_udg(2)
        radio = BroadcastRadio(udg, loss_rate=0.5, rng=random.Random(1))
        outcomes = [
            len(radio.deliver(Message(kind="Hello", sender=0)))
            for _ in range(200)
        ]
        dropped = outcomes.count(0)
        assert 50 < dropped < 150  # roughly half


class _FloodProcess(NodeProcess):
    """Re-broadcasts the first token it hears; counts receptions."""

    def __init__(self, node_id, position, neighbor_ids, origin):
        super().__init__(node_id, position, neighbor_ids)
        self.heard = False
        self.origin = origin

    def start(self):
        if self.node_id == self.origin:
            self.heard = True
            self.broadcast("Token")

    def receive(self, message):
        if message.kind == "Token" and not self.heard:
            self.heard = True
            self.broadcast("Token")


class TestSyncNetwork:
    def _flood(self, udg, origin=0, **kwargs):
        net = SyncNetwork(
            udg,
            lambda node_id, _net: _FloodProcess(
                node_id,
                udg.positions[node_id],
                tuple(sorted(udg.neighbors(node_id))),
                origin,
            ),
            **kwargs,
        )
        rounds = net.run()
        return net, rounds

    def test_flood_reaches_everyone(self):
        udg = line_udg(10)
        net, rounds = self._flood(udg)
        assert all(p.heard for p in net.processes)
        # Token travels one hop per round along the line.
        assert rounds == 10

    def test_each_node_broadcasts_once(self):
        udg = line_udg(10)
        net, _ = self._flood(udg)
        assert net.stats.total == 10
        assert net.stats.max_per_node() == 1

    def test_messages_charged_to_sender(self):
        udg = line_udg(3)
        net, _ = self._flood(udg, origin=1)
        assert net.stats.node_total(1) == 1

    def test_quiescence_on_silent_network(self):
        udg = line_udg(4)
        net = SyncNetwork(
            udg,
            lambda node_id, _net: NodeProcess(
                node_id, udg.positions[node_id], ()
            ),
        )
        assert net.run() == 0
        assert net.stats.total == 0

    def test_max_rounds_guard(self):
        udg = line_udg(2)

        class Chatter(NodeProcess):
            def start(self):
                self.broadcast("Noise")

            def receive(self, message):
                self.broadcast("Noise")

        net = SyncNetwork(
            udg,
            lambda node_id, _net: Chatter(
                node_id,
                udg.positions[node_id],
                tuple(sorted(udg.neighbors(node_id))),
            ),
        )
        with pytest.raises(RuntimeError):
            net.run(max_rounds=10)

    def test_detached_process_cannot_broadcast(self):
        proc = NodeProcess(0, Point(0, 0), ())
        with pytest.raises(RuntimeError):
            proc.broadcast("Hello")

    def test_deterministic_runs(self):
        udg = line_udg(8)
        net1, _ = self._flood(udg)
        net2, _ = self._flood(udg)
        assert net1.stats.per_node == net2.stats.per_node

    def test_flood_survives_partial_loss(self):
        # Failure injection: with a lossy radio the flood may not
        # reach everyone, but the driver must still terminate cleanly.
        udg = line_udg(10)
        radio = BroadcastRadio(udg, loss_rate=0.4, rng=random.Random(9))
        net, rounds = self._flood(udg, radio=radio)
        assert rounds < 10_000
        assert net.processes[0].heard
