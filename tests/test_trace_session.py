"""Tests for protocol tracing and mobility sessions."""

import random

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.mobility.session import SessionStep, run_mobility_session
from repro.protocols.clustering import ClusteringProcess, lowest_id_priority
from repro.sim.messages import HELLO, IAM_DOMINATOR, Message
from repro.sim.network import SyncNetwork
from repro.sim.trace import TraceRecorder
from repro.workloads.generators import connected_udg_instance


def traced_clustering(udg, **trace_kwargs):
    trace = TraceRecorder(**trace_kwargs)
    net = SyncNetwork(
        udg,
        lambda node_id, _net: ClusteringProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            lowest_id_priority,
        ),
        trace=trace,
    )
    net.run()
    return net, trace


class TestTraceRecorder:
    def line_udg(self, n):
        return UnitDiskGraph([Point(float(i), 0.0) for i in range(n)], 1.0)

    def test_records_all_broadcasts(self):
        udg = self.line_udg(5)
        net, trace = traced_clustering(udg)
        assert len(trace.events) == net.stats.total

    def test_kind_filter(self):
        udg = self.line_udg(5)
        _net, trace = traced_clustering(udg, kinds=frozenset({IAM_DOMINATOR}))
        assert trace.events
        assert all(e.kind == IAM_DOMINATOR for e in trace.events)

    def test_sender_filter(self):
        udg = self.line_udg(5)
        _net, trace = traced_clustering(udg, senders=frozenset({0}))
        assert trace.events
        assert all(e.sender == 0 for e in trace.events)

    def test_events_of(self):
        udg = self.line_udg(5)
        _net, trace = traced_clustering(udg)
        own = trace.events_of(2)
        assert own and all(e.sender == 2 for e in own)

    def test_rounds_grouping(self):
        udg = self.line_udg(4)
        _net, trace = traced_clustering(udg)
        grouped = trace.rounds()
        # Hellos all fly in round 1 (sent at start, delivered round 1).
        assert all(e.kind == HELLO for e in grouped[1])
        assert len(grouped[1]) == 4

    def test_kind_counts(self):
        udg = self.line_udg(5)
        net, trace = traced_clustering(udg)
        assert trace.kind_counts() == dict(net.stats.per_kind)

    def test_timeline_rendering(self):
        udg = self.line_udg(4)
        _net, trace = traced_clustering(udg)
        text = trace.timeline()
        assert "round 1" in text
        assert HELLO in text

    def test_timeline_truncation(self):
        udg = self.line_udg(6)
        _net, trace = traced_clustering(udg)
        text = trace.timeline(max_events_per_round=1)
        assert "... " in text and " more" in text

    def test_empty_trace(self):
        assert TraceRecorder().timeline() == "(empty trace)"

    def test_payload_summary_truncated(self):
        trace = TraceRecorder()
        trace.record(
            1,
            Message(kind="Big", sender=0, payload={"blob": "x" * 200}),
            recipients=[1, 2],
        )
        assert len(trace.events[0].payload_summary) < 80


class TestMobilitySession:
    @pytest.fixture(scope="class")
    def deployment(self):
        return connected_udg_instance(40, 180.0, 60.0, random.Random(19))

    def test_session_shape(self, deployment):
        result = run_mobility_session(deployment, steps=5, seed=1)
        assert len(result.steps) == 5
        assert all(isinstance(s, SessionStep) for s in result.steps)
        times = [s.time for s in result.steps]
        assert times == sorted(times)

    def test_aggregates_consistent(self, deployment):
        result = run_mobility_session(deployment, steps=6, seed=2)
        assert result.rebuild_count == sum(1 for s in result.steps if s.rebuilt)
        assert 0.0 <= result.rebuild_rate <= 1.0
        assert 0.0 <= result.mean_retention_on_rebuild <= 1.0
        assert 0.0 <= result.availability <= 1.0

    def test_zero_steps(self, deployment):
        result = run_mobility_session(deployment, steps=0)
        assert result.steps == ()
        assert result.rebuild_rate == 0.0
        assert result.availability == 1.0

    def test_negative_steps_rejected(self, deployment):
        with pytest.raises(ValueError):
            run_mobility_session(deployment, steps=-1)

    def test_slow_speed_means_fewer_rebuilds(self, deployment):
        slow = run_mobility_session(deployment, steps=6, speed=0.2, seed=3)
        fast = run_mobility_session(deployment, steps=6, speed=8.0, seed=3)
        assert slow.rebuild_count <= fast.rebuild_count

    def test_custom_probe_pairs(self, deployment):
        result = run_mobility_session(
            deployment, steps=2, probe_pairs=[(0, 1), (2, 2)], seed=4
        )
        # The degenerate (2, 2) pair is filtered out.
        assert result.steps[0].total_probes == 1

    def test_local_policy_runs(self, deployment):
        result = run_mobility_session(
            deployment, steps=4, seed=5, policy="local"
        )
        assert len(result.steps) == 4
        assert 0.0 <= result.availability <= 1.0
        for step in result.steps:
            assert 0.0 <= step.edge_retention <= 1.0

    def test_unknown_policy_rejected(self, deployment):
        with pytest.raises(ValueError):
            run_mobility_session(deployment, steps=1, policy="psychic")

    def test_policies_keep_routing_available(self, deployment):
        full = run_mobility_session(deployment, steps=4, seed=6, policy="full")
        local = run_mobility_session(deployment, steps=4, seed=6, policy="local")
        assert full.availability >= 0.8
        assert local.availability >= 0.8
