"""Equivalence suite for the tiled sharded constructions.

The sharded builds promise *bit-identical* output to the serial
pipeline: the tile grid plus per-stage halos must reproduce every
decision exactly, including on the inputs where a sharding bug would
hide — exact grids (cocircular quadruples everywhere, many of them
straddling tile lines), collinear lines crossing tiles, nodes placed
exactly on tile boundaries, and deployments dense enough that
planarization contests straddle tiles.

Shard counts {1, 2, 4, 9} cover the degenerate single-tile case, an
uneven 1x2 split, and square grids whose interior lines cut through
the deployment.
"""

import math
import random

import pytest

from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.sharding import (
    STAGE_HALO,
    ShardingStats,
    TileGrid,
    sharded_backbone,
    sharded_gabriel,
    sharded_ldel,
    sharded_pldel,
    sharded_udg,
    stage_halo,
)
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import local_delaunay_graph, planar_local_delaunay_graph

RADIUS = 25.0
SHARD_COUNTS = (1, 2, 4, 9)


def _random_points(n=80, side=120.0, seed=7):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]


def _grid_points(rows=8, cols=8, spacing=12.5):
    # spacing = radius/2 puts every other column exactly on the
    # r-aligned tile lines, and every unit square is an exactly
    # cocircular quadruple.
    return [
        Point(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]


def _collinear_points(n=14, spacing=10.0):
    # A line crossing several 25-unit tiles, nodes at multiples of 10:
    # indices 5 and 10 sit exactly on tile boundaries (x=50, x=100).
    return [Point(i * spacing, 30.0) for i in range(n)]


def _boundary_points():
    """Nodes exactly on tile lines plus clusters straddling them.

    With radius 25 the grid lines sit at multiples of 25; this set
    places nodes *on* x=25/y=25 lines (including a corner), and tight
    clusters on both sides so Gabriel witnesses and LDel proposals
    cross the boundary.
    """
    pts = [
        Point(25.0, 10.0), Point(25.0, 25.0), Point(25.0, 40.0),  # on x=25
        Point(10.0, 25.0), Point(40.0, 25.0),                     # on y=25
        Point(50.0, 50.0),                                        # on a corner
    ]
    rng = random.Random(13)
    for _ in range(40):
        # Clusters hugging the x=25 line from both sides.
        pts.append(Point(25.0 + rng.uniform(-8.0, 8.0), rng.uniform(0.0, 60.0)))
    for _ in range(20):
        pts.append(Point(rng.uniform(0.0, 60.0), 25.0 + rng.uniform(-4.0, 4.0)))
    return pts


def _dense_points(n=150, side=70.0, seed=23):
    """Dense enough that LDel^1 accepts intersecting triangles."""
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]


DEPLOYMENTS = {
    "random": _random_points,
    "grid": _grid_points,
    "collinear": _collinear_points,
    "boundary": _boundary_points,
    "dense": _dense_points,
}


@pytest.fixture(params=sorted(DEPLOYMENTS))
def points(request):
    return DEPLOYMENTS[request.param]()


@pytest.fixture(params=SHARD_COUNTS)
def shards(request):
    return request.param


class TestShardedEqualsSerial:
    """Every sharded construction is bit-identical to its serial twin."""

    def test_udg(self, points, shards):
        serial = UnitDiskGraph(points, RADIUS)
        graph, _ = sharded_udg(points, RADIUS, shards=shards, executor_mode="serial")
        assert graph.edge_set() == serial.edge_set()

    def test_gabriel(self, points, shards):
        serial = gabriel_graph(UnitDiskGraph(points, RADIUS))
        graph, _ = sharded_gabriel(
            points, RADIUS, shards=shards, executor_mode="serial"
        )
        assert graph.edge_set() == serial.edge_set()

    def test_ldel1(self, points, shards):
        serial = local_delaunay_graph(UnitDiskGraph(points, RADIUS), k=1)
        result, _ = sharded_ldel(
            points, RADIUS, k=1, shards=shards, executor_mode="serial"
        )
        assert result.graph.edge_set() == serial.graph.edge_set()
        assert result.triangles == serial.triangles
        assert result.gabriel_edges == serial.gabriel_edges

    def test_ldel2(self, points, shards):
        serial = local_delaunay_graph(UnitDiskGraph(points, RADIUS), k=2)
        result, _ = sharded_ldel(
            points, RADIUS, k=2, shards=shards, executor_mode="serial"
        )
        assert result.graph.edge_set() == serial.graph.edge_set()
        assert result.triangles == serial.triangles

    def test_pldel(self, points, shards):
        serial = planar_local_delaunay_graph(UnitDiskGraph(points, RADIUS))
        result, stats = sharded_pldel(
            points, RADIUS, shards=shards, executor_mode="serial"
        )
        assert result.graph.edge_set() == serial.graph.edge_set()
        assert result.triangles == serial.triangles
        assert isinstance(stats, ShardingStats)
        assert stats.counters["surviving_triangles"] == len(serial.triangles)

    def test_backbone(self, points, shards):
        serial = build_backbone(points, RADIUS)
        result, _ = sharded_backbone(
            points, RADIUS, shards=shards, executor_mode="serial"
        )
        assert result.dominators == serial.dominators
        assert result.connectors == serial.connectors
        assert result.ldel_icds.edge_set() == serial.ldel_icds.edge_set()
        assert result.ldel_icds_prime.edge_set() == serial.ldel_icds_prime.edge_set()


class TestThreadFanout:
    """The executor fan-out path yields the same stitch as serial mode."""

    def test_pldel_threaded(self):
        points = _dense_points()
        serial = planar_local_delaunay_graph(UnitDiskGraph(points, RADIUS))
        result, stats = sharded_pldel(
            points, RADIUS, shards=4, max_workers=2, executor_mode="thread"
        )
        assert result.graph.edge_set() == serial.graph.edge_set()
        assert result.triangles == serial.triangles
        assert stats.workers == 2


class TestShardingStats:
    def test_counters_and_phases(self):
        points = _dense_points()
        _, stats = sharded_pldel(points, RADIUS, shards=4, executor_mode="serial")
        assert stats.tiles >= 1
        assert stats.grid[0] * stats.grid[1] == stats.tiles
        assert stats.counters["accepted_triangles"] >= stats.counters[
            "surviving_triangles"
        ]
        for phase in ("assign", "build", "stitch"):
            assert phase in stats.phase_seconds
        assert len(stats.tile_seconds) == stats.tiles
        doc = stats.as_dict()
        assert doc["counters"] == stats.counters
        assert doc["grid"] == list(stats.grid)

    def test_contest_worker_replays_removal_rule(self):
        # Accepted LDel^1 triangles intersect only in adversarial
        # configurations that uniform sampling essentially never
        # produces (the >=60-degree proposal rule and the 1-hop
        # witness filter suppress them), so phase B is exercised
        # directly: a sliver triangle whose huge circumcircle swallows
        # a vertex of a second, crossing triangle must lose the
        # contest, exactly as in serial planarize_ldel1.
        from repro.geometry.circle import circumcircle
        from repro.sharding.build import _contest_worker

        t1 = ((0.0, 0.0), (10.0, 0.0), (5.0, 0.5))   # sliver, circle dips deep
        t2 = ((5.0, -9.0), (6.0, -9.0), (5.5, 0.2))  # edge crosses t1's base
        c1 = circumcircle(Point(*t1[0]), Point(*t1[1]), Point(*t1[2]))
        assert c1 is not None and c1.contains(Point(*t2[0]))

        payload = ((0, 0), [(0, 1, 2), (3, 4, 5)], [t1, t2], [True, True], 25.0)
        out = _contest_worker(payload)
        assert out["contests"] == 1
        assert out["straddle_contests"] == 0
        assert (0, 1, 2) not in out["survivors"]

    def test_contest_worker_counts_straddle(self):
        from repro.sharding.build import _contest_worker

        t1 = ((0.0, 0.0), (10.0, 0.0), (5.0, 0.5))
        t2 = ((5.0, -9.0), (6.0, -9.0), (5.5, 0.2))
        # The same contest with the triangles owned by different tiles
        # is cross-tile reconciliation work and must be counted.
        payload = ((0, 0), [(0, 1, 2), (3, 4, 5)], [t1, t2], [True, False], 25.0)
        out = _contest_worker(payload)
        assert out["straddle_contests"] == 1
        # Only owned survivors are reported; the foreign triangle's
        # fate belongs to its owner tile.
        assert all(tri == (0, 1, 2) for tri in out["survivors"])


class TestTileGrid:
    def test_assignment_is_partition(self):
        points = _boundary_points()
        grid = TileGrid(points, RADIUS, 4)
        owned = grid.assign(points)
        ids = sorted(i for members in owned.values() for i in members)
        assert ids == list(range(len(points)))

    def test_nodes_on_lines_assigned_deterministically(self):
        grid = TileGrid([Point(0, 0), Point(100, 100)], 25.0, 16)
        # Half-open cores: a node exactly on an interior line belongs
        # to the tile on its right/top.
        assert grid.tile_of(Point(25.0, 10.0))[0] == grid.tile_of(Point(26.0, 10.0))[0]
        assert grid.tile_of(Point(25.0, 10.0))[0] != grid.tile_of(Point(24.0, 10.0))[0]

    def test_far_boundary_clamps(self):
        points = [Point(0.0, 0.0), Point(50.0, 50.0)]
        grid = TileGrid(points, 25.0, 4)
        ix, iy = grid.tile_of(Point(50.0, 50.0))
        assert 0 <= ix < grid.nx and 0 <= iy < grid.ny

    def test_r_aligned_boundaries(self):
        grid = TileGrid(_random_points(), RADIUS, 9)
        for tile in grid.tiles:
            for coord in (tile.x0, tile.y0, tile.x1, tile.y1):
                assert math.isclose(coord / RADIUS, round(coord / RADIUS))

    def test_halo_members_superset_of_core(self):
        points = _random_points()
        grid = TileGrid(points, RADIUS, 4)
        owned = grid.assign(points)
        for tile in grid.tiles:
            members = set(grid.halo_members(tile, points, RADIUS))
            assert set(owned[tile.key]) <= members

    def test_shards_never_exceeded(self):
        points = _random_points()
        for shards in (1, 2, 3, 4, 5, 7, 9, 16, 100):
            grid = TileGrid(points, RADIUS, shards)
            assert 1 <= len(grid) <= shards

    def test_stage_halo(self):
        assert stage_halo("udg") == STAGE_HALO["udg"] == 1
        assert stage_halo("ldel", 1) == 2
        assert stage_halo("ldel", 3) == 4
        assert stage_halo("pldel") == 3
        with pytest.raises(ValueError):
            stage_halo("nonsense")

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TileGrid([], RADIUS, 4)
        with pytest.raises(ValueError):
            TileGrid([Point(0, 0)], RADIUS, 0)
        with pytest.raises(ValueError):
            TileGrid([Point(0, 0)], 0.0, 4)


class TestServiceIntegration:
    """`sharded:*` pipelines serve through the registry and metrics."""

    def test_sharded_pipeline_build(self):
        from repro.service.registry import build_scenario

        scenario = {"nodes": 90, "side": 110.0, "radius": 25.0, "seed": 5}
        serial = build_scenario("ldel", scenario)
        sharded = build_scenario("sharded:ldel", scenario, {"shards": 4})
        assert sharded.graph.edge_set() == serial.graph.edge_set()
        sharding = sharded.extras["sharding"]
        assert sharding["tiles"] >= 1
        assert "phase_seconds" in sharding

    def test_sharded_backbone_pipeline(self):
        from repro.service.registry import build_scenario

        scenario = {"nodes": 90, "side": 110.0, "radius": 25.0, "seed": 5}
        serial = build_scenario("backbone", scenario)
        sharded = build_scenario("sharded:backbone", scenario, {"shards": 4})
        assert sharded.graph.edge_set() == serial.graph.edge_set()
        assert sharded.extras["dominators"] == serial.summary()["dominators"]

    def test_metrics_fold_sharding_counters(self):
        from repro.service.server import SpannerService

        service = SpannerService()
        scenario = {"nodes": 90, "side": 110.0, "radius": 25.0, "seed": 5}
        service.build({"pipeline": "sharded:ldel", "scenario": scenario})
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["sharding.builds"] == 1
        assert counters["sharding.tiles"] >= 1
        assert any(k.startswith("sharding.") for k in counters)

    def test_unknown_param_rejected(self):
        from repro.service.registry import RegistryError, get_pipeline

        spec = get_pipeline("sharded:ldel")
        with pytest.raises(RegistryError):
            spec.canonicalize({"bogus": 1})
        canonical = spec.canonicalize({"shards": 9})
        assert canonical == {"shards": 9, "workers": 0}
