"""Unit tests for repro.geometry.hull."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.hull import convex_hull
from repro.geometry.predicates import orientation_value
from repro.geometry.primitives import Point, polygon_area

# Rounded coordinates: keeps exactly-degenerate (collinear, duplicate)
# cases, which are the interesting ones, while excluding denormal-scale
# values whose orientation determinant underflows to a meaningless 0.
coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False).map(
    lambda v: round(v, 6)
)
points = st.builds(Point, coords, coords)


class TestConvexHullBasics:
    def test_empty(self):
        assert convex_hull([]) == []

    def test_single_point(self):
        assert convex_hull([Point(1, 1)]) == [Point(1, 1)]

    def test_two_points_sorted(self):
        assert convex_hull([Point(1, 0), Point(0, 0)]) == [Point(0, 0), Point(1, 0)]

    def test_duplicates_collapse(self):
        assert convex_hull([Point(0, 0)] * 5) == [Point(0, 0)]

    def test_collinear_input_keeps_extremes(self):
        pts = [Point(float(i), float(i)) for i in range(5)]
        assert convex_hull(pts) == [Point(0, 0), Point(4, 4)]

    def test_square_with_interior_point(self):
        square = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
        hull = convex_hull(square + [Point(2, 2)])
        assert set(hull) == set(square)
        assert len(hull) == 4

    def test_ccw_orientation(self):
        hull = convex_hull(
            [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(2, 1)]
        )
        assert polygon_area(hull) > 0

    def test_collinear_boundary_points_dropped(self):
        pts = [Point(0, 0), Point(2, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
        hull = convex_hull(pts)
        assert Point(2, 0) not in hull


class TestConvexHullProperties:
    @given(st.lists(points, min_size=3, max_size=40))
    def test_hull_is_convex(self, pts):
        hull = convex_hull(pts)
        n = len(hull)
        if n < 3:
            return
        for i in range(n):
            a, b, c = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            assert orientation_value(a, b, c) > 0

    @given(st.lists(points, min_size=1, max_size=40))
    def test_hull_vertices_are_input_points(self, pts):
        assert set(convex_hull(pts)) <= set(pts)

    @given(st.lists(points, min_size=1, max_size=40))
    def test_extremes_are_on_hull(self, pts):
        hull = set(convex_hull(pts))
        assert min(pts) in hull  # lexicographic min is always extreme
        assert max(pts) in hull
