"""Unit tests for repro.geometry.predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.predicates import (
    Orientation,
    in_circle,
    on_segment,
    orientation,
    orientation_value,
    point_in_polygon,
    segments_cross,
    segments_intersect,
)
from repro.geometry.primitives import Point

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestOrientation:
    def test_counterclockwise(self):
        assert (
            orientation(Point(0, 0), Point(1, 0), Point(0, 1))
            == Orientation.COUNTERCLOCKWISE
        )

    def test_clockwise(self):
        assert (
            orientation(Point(0, 0), Point(0, 1), Point(1, 0))
            == Orientation.CLOCKWISE
        )

    def test_collinear(self):
        assert (
            orientation(Point(0, 0), Point(1, 1), Point(2, 2))
            == Orientation.COLLINEAR
        )

    def test_collinear_with_large_coordinates(self):
        # The epsilon must scale with coordinate magnitude.
        a, b, c = Point(1e5, 1e5), Point(2e5, 2e5), Point(3e5, 3e5)
        assert orientation(a, b, c) == Orientation.COLLINEAR

    @given(points, points, points)
    def test_swap_flips_sign(self, a, b, c):
        assert orientation_value(a, b, c) == -orientation_value(a, c, b)

    @given(points, points, points)
    def test_cyclic_invariance(self, a, b, c):
        v1 = orientation_value(a, b, c)
        v2 = orientation_value(b, c, a)
        assert v1 == pytest.approx(v2, rel=1e-6, abs=1e-3)


class TestInCircle:
    def test_inside_positive_for_ccw(self):
        # Unit circle through three ccw points; origin is inside.
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert in_circle(a, b, c, Point(0, 0)) > 0

    def test_outside_negative_for_ccw(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert in_circle(a, b, c, Point(5, 5)) < 0

    def test_cocircular_near_zero(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert in_circle(a, b, c, Point(0, -1)) == pytest.approx(0.0, abs=1e-9)


class TestOnSegment:
    def test_interior_point(self):
        assert on_segment(Point(0, 0), Point(2, 2), Point(1, 1))

    def test_endpoint(self):
        assert on_segment(Point(0, 0), Point(2, 2), Point(2, 2))

    def test_outside_bbox(self):
        assert not on_segment(Point(0, 0), Point(2, 2), Point(3, 3))


class TestSegmentsIntersect:
    def test_plain_crossing(self):
        assert segments_intersect(
            Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)
        )

    def test_shared_endpoint_counts(self):
        assert segments_intersect(
            Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0)
        )

    def test_disjoint(self):
        assert not segments_intersect(
            Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)
        )

    def test_collinear_overlap(self):
        assert segments_intersect(
            Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0)
        )

    def test_t_junction(self):
        assert segments_intersect(
            Point(0, 0), Point(2, 0), Point(1, 0), Point(1, 1)
        )


class TestSegmentsCross:
    def test_proper_crossing(self):
        assert segments_cross(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_shared_endpoint_is_not_a_crossing(self):
        assert not segments_cross(
            Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0)
        )

    def test_disjoint_segments(self):
        assert not segments_cross(
            Point(0, 0), Point(1, 0), Point(5, 5), Point(6, 6)
        )

    def test_t_junction_interior_touch_crosses(self):
        # One segment's endpoint strictly inside the other.
        assert segments_cross(Point(0, 0), Point(2, 0), Point(1, -1), Point(1, 0))

    def test_endpoint_touch_does_not_cross(self):
        assert not segments_cross(
            Point(0, 0), Point(2, 0), Point(2, 0), Point(3, 1)
        )

    @given(points, points, points, points)
    def test_cross_implies_intersect(self, a, b, c, d):
        if segments_cross(a, b, c, d):
            assert segments_intersect(a, b, c, d)

    @given(points, points, points, points)
    def test_symmetric_in_segments(self, a, b, c, d):
        assert segments_cross(a, b, c, d) == segments_cross(c, d, a, b)


class TestPointInPolygon:
    SQUARE = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]

    def test_inside(self):
        assert point_in_polygon(Point(2, 2), self.SQUARE)

    def test_outside(self):
        assert not point_in_polygon(Point(5, 2), self.SQUARE)

    def test_concave_polygon(self):
        # A "C" shape: the notch is outside.
        c_shape = [
            Point(0, 0), Point(4, 0), Point(4, 1), Point(1, 1),
            Point(1, 3), Point(4, 3), Point(4, 4), Point(0, 4),
        ]
        assert point_in_polygon(Point(0.5, 2), c_shape)
        assert not point_in_polygon(Point(3, 2), c_shape)
