"""SoA construction core vs the pure-Python reference: bit-identity.

The array-native kernels (:mod:`repro.core.soa` and consumers) promise
the *same* graphs as the scalar reference path — not approximately,
bit for bit.  This suite holds every consumer to that on the
deployments where vectorized shortcuts are most likely to diverge:
random clouds at two sizes, exact grids (cocircular quadruples
everywhere), collinear lines, the tile-boundary stress set from the
sharding suite (nodes exactly on tile lines), and a dense cloud where
planarization actually removes triangles.  Each test builds once with
the kernels active and once under
:func:`repro.core.compat.numpy_disabled` and compares the outputs.
"""

import math
import random

import pytest

from repro.core import compat
from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.incremental import IncrementalMaintainer
from repro.incremental.events import Event
from repro.sharding.build import sharded_pldel
from repro.topology.ldel import planar_local_delaunay_graph
from repro.workloads.generators import connected_udg_instance

pytestmark = pytest.mark.skipif(
    compat.np is None, reason="requires numpy (nothing to compare without it)"
)

RADIUS = 25.0


def _random_points(n, seed=7):
    side = 10.0 * math.sqrt(n)
    dep = connected_udg_instance(n, side, RADIUS, random.Random(seed))
    return list(dep.points)


def _grid_points(rows=8, cols=8, spacing=12.5):
    return [
        Point(c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    ]


def _collinear_points(n=14, spacing=10.0):
    return [Point(i * spacing, 30.0) for i in range(n)]


def _boundary_points():
    """Nodes exactly on tile lines plus clusters straddling them."""
    pts = [
        Point(25.0, 10.0), Point(25.0, 25.0), Point(25.0, 40.0),
        Point(10.0, 25.0), Point(40.0, 25.0),
        Point(50.0, 50.0),
    ]
    rng = random.Random(13)
    for _ in range(40):
        pts.append(Point(25.0 + rng.uniform(-8.0, 8.0), rng.uniform(0.0, 60.0)))
    for _ in range(20):
        pts.append(Point(rng.uniform(0.0, 60.0), 25.0 + rng.uniform(-4.0, 4.0)))
    return pts


def _dense_points(n=150, side=70.0, seed=23):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]


DEPLOYMENTS = {
    "random200": lambda: _random_points(200),
    "random1000": lambda: _random_points(1000),
    "grid": _grid_points,
    "collinear": _collinear_points,
    "boundary": _boundary_points,
    "dense": _dense_points,
}


@pytest.fixture(params=sorted(DEPLOYMENTS), scope="module")
def points(request):
    return DEPLOYMENTS[request.param]()


def _assert_same_result(soa, ref):
    assert soa.gabriel_edges == ref.gabriel_edges
    assert soa.triangles == ref.triangles
    assert soa.graph.edge_set() == ref.graph.edge_set()


class TestSerialPipeline:
    def test_udg_edges_identical(self, points):
        soa = UnitDiskGraph(points, RADIUS)
        with compat.numpy_disabled():
            ref = UnitDiskGraph(points, RADIUS)
        assert soa.edge_set() == ref.edge_set()

    def test_pldel_identical(self, points):
        soa = planar_local_delaunay_graph(UnitDiskGraph(points, RADIUS))
        with compat.numpy_disabled():
            ref = planar_local_delaunay_graph(UnitDiskGraph(points, RADIUS))
        _assert_same_result(soa, ref)


class TestShardedPipeline:
    def test_sharded_pldel_identical(self, points):
        soa, _ = sharded_pldel(points, RADIUS, shards=4)
        with compat.numpy_disabled():
            ref, _ = sharded_pldel(points, RADIUS, shards=4)
        _assert_same_result(soa, ref)

    def test_sharded_matches_serial_soa(self, points):
        sharded, _ = sharded_pldel(points, RADIUS, shards=4)
        serial = planar_local_delaunay_graph(UnitDiskGraph(points, RADIUS))
        _assert_same_result(sharded, serial)


class TestBackbone:
    def test_backbone_identical(self, points):
        soa = build_backbone(points, RADIUS, mode="fast")
        with compat.numpy_disabled():
            ref = build_backbone(points, RADIUS, mode="fast")
        assert soa.dominators == ref.dominators
        assert soa.connectors == ref.connectors
        assert soa.cds.edge_set() == ref.cds.edge_set()
        assert soa.icds.edge_set() == ref.icds.edge_set()
        assert soa.ldel_icds.edge_set() == ref.ldel_icds.edge_set()
        assert soa.ldel_icds_prime.edge_set() == ref.ldel_icds_prime.edge_set()


class TestIncrementalPipeline:
    def test_maintenance_identical(self, points):
        # Drive the same move trace through a maintainer with the SoA
        # kernels active and one with numpy masked; every intermediate
        # snapshot must agree field by field.
        rng = random.Random(99)
        n = len(points)
        events = [
            [Event("move", node=rng.randrange(n),
                   x=points[0][0] + rng.uniform(-5.0, 5.0),
                   y=points[0][1] + rng.uniform(-5.0, 5.0))]
            for _ in range(3)
        ]
        soa = IncrementalMaintainer(points, RADIUS)
        with compat.numpy_disabled():
            ref = IncrementalMaintainer(points, RADIUS)
        for batch in events:
            soa.apply(batch)
            with compat.numpy_disabled():
                ref.apply(batch)
            assert soa.snapshot() == ref.snapshot()
