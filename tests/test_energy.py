"""Tests for protocol energy accounting."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.sim.energy import protocol_energy
from repro.sim.stats import MessageStats


def line_udg(n):
    return UnitDiskGraph([Point(float(i), 0.0) for i in range(n)], 1.0)


class TestProtocolEnergy:
    def test_single_broadcast(self):
        udg = line_udg(3)
        stats = MessageStats()
        stats.record(1, "Hello")  # node 1 has two neighbors
        report = protocol_energy(stats, udg, alpha=2.0, rx_cost_fraction=0.1)
        assert report.node(1) == pytest.approx(1.0)  # tx: r^2 = 1
        assert report.node(0) == pytest.approx(0.1)  # rx
        assert report.node(2) == pytest.approx(0.1)
        assert report.total == pytest.approx(1.2)

    def test_alpha_scales_tx(self):
        udg = UnitDiskGraph([Point(0, 0), Point(2, 0)], 2.0)
        stats = MessageStats()
        stats.record(0, "Hello")
        r2 = protocol_energy(stats, udg, alpha=2.0, rx_cost_fraction=0.0)
        r4 = protocol_energy(stats, udg, alpha=4.0, rx_cost_fraction=0.0)
        assert r4.total == pytest.approx(r2.total * 4.0)  # 16 vs 4

    def test_validation(self):
        udg = line_udg(2)
        stats = MessageStats()
        with pytest.raises(ValueError):
            protocol_energy(stats, udg, alpha=1.0)
        with pytest.raises(ValueError):
            protocol_energy(stats, udg, rx_cost_fraction=-0.5)

    def test_empty_run(self):
        report = protocol_energy(MessageStats(), line_udg(4))
        assert report.total == 0.0
        assert report.max_node == 0.0

    def test_pipeline_energy_bounded_per_node(self, deployment, backbone):
        udg = backbone.udg
        report = protocol_energy(backbone.stats_ldel, udg, alpha=2.0)
        # Constant messages per node => per-node energy bounded by
        # (max msgs) * tx + (neighbors' msgs) * rx; sanity-check scale.
        tx_unit = udg.radius**2
        assert report.max_node <= 120 * tx_unit * (1 + 0.1 * max(udg.degrees()))

    def test_energy_attribution_sums(self, deployment, backbone):
        udg = backbone.udg
        report = protocol_energy(
            backbone.stats_cds, udg, alpha=2.0, rx_cost_fraction=0.0
        )
        # With free reception, total = total sends * r^alpha.
        assert report.total == pytest.approx(
            backbone.stats_cds.total * udg.radius**2
        )
