"""Integration tests: the HTTP service end-to-end against the library.

Drives a real ``ThreadingHTTPServer`` on an ephemeral port through
:class:`repro.service.client.ServiceClient`; the acceptance check is
that a served ``/build`` + ``/route`` round-trip reproduces the
library-level :func:`repro.routing.backbone_routing.backbone_route`
result exactly.
"""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.routing.backbone_routing import backbone_route
from repro.service.client import ClientError, ServiceClient
from repro.service.server import BackgroundServer, ServiceError, SpannerService
from repro.workloads.generators import connected_udg_instance

SCENARIO = {"nodes": 30, "side": 150.0, "radius": 55.0, "seed": 1}


@pytest.fixture(scope="module")
def server():
    service = SpannerService(executor_mode="serial", cache_size=64)
    with BackgroundServer(service=service) as background:
        yield background


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, timeout=120.0)


class TestEndpoints:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0.0

    def test_pipelines_listing(self, client):
        names = {p["name"] for p in client.pipelines()["pipelines"]}
        assert "backbone" in names and "gg" in names

    def test_unknown_path_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_pipeline_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.build("not-a-pipeline", SCENARIO)
        assert excinfo.value.status == 400

    def test_invalid_json_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/build",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestBuildRouteRoundTrip:
    def test_build_then_route_matches_library(self, client):
        built = client.build("backbone", SCENARIO)
        assert built["cache"] == "miss"
        assert built["nodes"] == SCENARIO["nodes"]

        # Library-level ground truth on the identical deployment.
        deployment = connected_udg_instance(
            SCENARIO["nodes"], SCENARIO["side"], SCENARIO["radius"],
            random.Random(SCENARIO["seed"]),
        )
        result = build_backbone(deployment.points, deployment.radius)
        assert built["edges"] == result.ldel_icds.edge_count
        assert built["dominators"] == len(result.dominators)

        for source, target, mode in ((0, 17, "gpsr"), (3, 21, "greedy")):
            served = client.route(source, target, key=built["key"], mode=mode)
            expected = backbone_route(result, source, target, mode=mode)
            assert served["delivered"] == expected.delivered
            assert tuple(served["path"]) == expected.path
            assert served["hops"] == expected.hops
            if expected.delivered:
                assert served["length"] == pytest.approx(
                    expected.length(result.udg)
                )

    def test_second_build_hits_cache(self, client):
        first = client.build("backbone", SCENARIO)
        again = client.build("backbone", SCENARIO)
        assert again["cache"] == "hit"
        assert again["key"] == first["key"]

    def test_route_with_inline_build(self, client):
        body = client.route(0, 9, pipeline="backbone", scenario=SCENARIO)
        assert isinstance(body["delivered"], bool)
        assert body["path"][0] == 0

    def test_route_unknown_key_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.route(0, 1, key="0" * 64)
        assert excinfo.value.status == 404

    def test_route_on_flat_pipeline_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.route(0, 1, pipeline="gg", scenario=SCENARIO)
        assert excinfo.value.status == 400

    def test_route_out_of_range_400(self, client):
        built = client.build("backbone", SCENARIO)
        with pytest.raises(ClientError) as excinfo:
            client.route(0, 10_000, key=built["key"])
        assert excinfo.value.status == 400


class TestBatchAndMetrics:
    def test_batch_mixes_hits_misses_and_errors(self, client):
        requests = [
            {"pipeline": "gg", "scenario": SCENARIO},
            {"pipeline": "gg", "scenario": SCENARIO},  # same key: one build
            {"pipeline": "rng", "scenario": SCENARIO},
            {"pipeline": "bogus", "scenario": SCENARIO},
        ]
        body = client.batch(requests)
        assert body["tasks"] == 4
        assert body["succeeded"] == 3
        results = body["results"]
        assert results[0]["ok"] and results[2]["ok"]
        assert not results[3]["ok"] and "unknown pipeline" in results[3]["error"]
        # Results preserve request order and report graph shapes.
        assert results[0]["edges"] >= results[2]["edges"]  # GG ⊇ RNG

    def test_metrics_account_cache_traffic(self, client):
        before = client.metrics()
        client.build("mst", SCENARIO)   # miss
        client.build("mst", SCENARIO)   # hit
        after = client.metrics()
        assert after["counters"]["build.cache_misses"] == \
            before["counters"].get("build.cache_misses", 0) + 1
        assert after["counters"]["build.cache_hits"] == \
            before["counters"].get("build.cache_hits", 0) + 1
        cache = after["cache"]
        assert cache["hits"] + cache["misses"] >= 2
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert after["latency"]["build.request"]["count"] >= 2
        assert after["latency"]["build.request"]["p95_ms"] >= 0.0

    def test_measured_build_surfaces_oracle_metrics(self, client):
        body = client.build("gg", SCENARIO, params={"measure": True})
        assert body["metrics"]["length_stretch"]["avg"] >= 1.0
        assert body["oracle"]["counters"]["apsp_misses"] == 6
        after = client.metrics()
        counters = after["counters"]
        assert counters["oracle.measurements"] >= 1
        assert counters["oracle.apsp_misses"] >= 6
        assert counters["oracle.stretch_calls"] >= 3
        assert after["latency"]["oracle.stage.apsp"]["count"] >= 1
        assert after["latency"]["oracle.stage.kernel"]["count"] >= 1

    def test_direct_service_error_shape(self):
        service = SpannerService(executor_mode="serial")
        with pytest.raises(ServiceError) as excinfo:
            service.build({"pipeline": "gg"})
        assert excinfo.value.status == 400


class TestDiskCacheAcrossRestart:
    def test_new_service_warms_from_disk(self, tmp_path):
        scenario = {"nodes": 20, "side": 150.0, "radius": 60.0, "seed": 5}
        cold = SpannerService(executor_mode="serial", cache_dir=str(tmp_path))
        first = cold.build({"pipeline": "backbone", "scenario": scenario})
        assert first["cache"] == "miss"

        warm = SpannerService(executor_mode="serial", cache_dir=str(tmp_path))
        second = warm.build({"pipeline": "backbone", "scenario": scenario})
        assert second["cache"] == "hit"
        assert warm.cache.stats.disk_hits == 1
        # The revived backbone still routes.
        routed = warm.route({"key": second["key"], "source": 0, "target": 5})
        assert routed["path"][0] == 0


class TestRouteBatch:
    def test_batch_matches_library_router(self, client):
        from repro.core.route_engine import BackboneRouter

        built = client.build("backbone", SCENARIO)
        pairs = [[0, 9], [3, 17], [22, 5], [1, 28]]
        body = client.route_batch(
            key=built["key"], pairs=pairs, mode="gpsr", include_paths=4
        )
        assert body["pairs"] == 4
        assert set(body["reasons"]) == {"delivered", "stuck", "loop", "hop-limit"}

        rng = random.Random(SCENARIO["seed"])
        dep = connected_udg_instance(
            SCENARIO["nodes"], SCENARIO["side"], SCENARIO["radius"], rng
        )
        result = build_backbone(dep.points, dep.radius)
        batch = BackboneRouter(result).route_pairs(
            [tuple(p) for p in pairs], mode="gpsr"
        )
        assert body["delivered"] == batch.delivered_count
        assert body["hops_avg"] == pytest.approx(batch.hops_avg())
        for i, entry in enumerate(body["paths"]):
            assert tuple(entry["path"]) == batch.path(i)
            assert entry["reason"] == batch.reason(i)

    def test_sampled_pairs_and_chunking(self, client):
        built = client.build("backbone", SCENARIO)
        body = client.route_batch(
            key=built["key"], count=40, seed=3, mode="shortest", chunk=16
        )
        assert body["pairs"] == 40
        assert body["chunks"] == 3
        assert 0.0 <= body["delivery_rate"] <= 1.0
        assert body["reachable_delivery_rate"] >= body["delivery_rate"]
        again = client.route_batch(
            key=built["key"], count=40, seed=3, mode="shortest"
        )
        assert again["delivered"] == body["delivered"]
        assert again["hops_avg"] == pytest.approx(body["hops_avg"])

    def test_failure_replay(self, client):
        built = client.build("backbone", SCENARIO)
        body = client.route_batch(
            key=built["key"],
            count=30,
            seed=1,
            failure={"node_loss": 0.2, "link_loss": 0.1, "seed": 7},
        )
        assert body["pairs"] == 30
        assert body["routed"] + body["endpoint_failed"] == 30
        assert body["survived"] <= body["delivered"]
        assert 0.0 <= body["delivery_rate"] <= 1.0
        if body["stretch_samples"]:
            assert body["stretch_avg"] >= 1.0

    def test_validation_errors(self, client):
        built = client.build("backbone", SCENARIO)
        key = built["key"]
        for kwargs in (
            {"mode": "teleport", "count": 5},
            {"pairs": [[0, 10_000]]},
            {"pairs": []},
            {},  # neither pairs nor count
            {"count": 5, "chunk": 0},
            {"count": 5, "include_paths": -1},
            {"count": 5, "failure": {"node_loss": 2.0}},
        ):
            with pytest.raises(ClientError) as excinfo:
                client.route_batch(key=key, **kwargs)
            assert excinfo.value.status == 400
        with pytest.raises(ClientError) as excinfo:
            client.route_batch(key="0" * 64, count=5)
        assert excinfo.value.status == 404

    def test_metrics_account_routing(self, client):
        built = client.build("backbone", SCENARIO)
        before = client.metrics()["counters"]
        client.route_batch(key=built["key"], count=25, seed=2)
        client.route_batch(key=built["key"], count=25, seed=2)
        after = client.metrics()
        counters = after["counters"]
        assert counters["routing.requests"] >= before.get("routing.requests", 0) + 2
        assert counters["routing.pairs"] >= before.get("routing.pairs", 0) + 50
        assert counters["routing.router_cache_hits"] >= 1
        assert after["latency"]["routing.batch"]["count"] >= 2
