"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.workloads.io import load_deployment, load_graph

ARGS_SMALL = ["--nodes", "30", "--side", "150", "--radius", "55", "--seed", "1"]


class TestBuildCommand:
    def test_summary_output(self, capsys):
        assert main(["build", *ARGS_SMALL]) == 0
        out = capsys.readouterr().out
        assert "dominators" in out
        assert "planar: True" in out

    def test_exports(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        dep_path = tmp_path / "dep.json"
        code = main(
            [
                "build",
                *ARGS_SMALL,
                "--out-dir",
                str(out_dir),
                "--save-deployment",
                str(dep_path),
            ]
        )
        assert code == 0
        assert (out_dir / "ldel_icds.svg").exists()
        graph = load_graph(out_dir / "ldel_icds.json")
        assert graph.edge_count > 0
        deployment = load_deployment(dep_path)
        assert len(deployment.points) == 30

    def test_load_deployment_round_trip(self, tmp_path, capsys):
        dep_path = tmp_path / "dep.json"
        main(["build", *ARGS_SMALL, "--save-deployment", str(dep_path)])
        first = capsys.readouterr().out
        main(["build", "--load", str(dep_path)])
        second = capsys.readouterr().out
        # Same deployment -> identical summary lines.
        assert first.splitlines()[0] in second


class TestMeasureCommand:
    def test_prints_all_topologies(self, capsys):
        assert main(["measure", *ARGS_SMALL]) == 0
        out = capsys.readouterr().out
        for name in ("UDG", "RNG", "GG", "LDel(ICDS')"):
            assert name in out


class TestRouteCommand:
    def test_successful_route(self, capsys):
        assert main(["route", *ARGS_SMALL, "0", "29"]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out
        assert "path (" in out

    def test_out_of_range_target(self, capsys):
        assert main(["route", *ARGS_SMALL, "0", "999"]) == 2

    def test_greedy_mode(self, capsys):
        code = main(["route", *ARGS_SMALL, "--mode", "greedy", "0", "5"])
        assert code in (0, 1)  # greedy may legitimately stall


class TestExperimentsCommand:
    def test_delegates_to_harness(self, capsys):
        assert main(["experiments", "table1", "--quick", "--instances", "1"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out


class TestArgumentParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["teleport"])


class TestServeCommand:
    def test_serve_wiring(self, monkeypatch, capsys):
        # Stub the blocking server loop; assert the CLI passes its
        # flags through to repro.service.server.serve.
        import repro.service.server as server_module

        captured = {}

        def fake_serve(host, port, **kwargs):
            captured.update(host=host, port=port, **kwargs)
            return 0

        monkeypatch.setattr(server_module, "serve", fake_serve)
        code = main(
            [
                "serve", "--host", "0.0.0.0", "--port", "9001",
                "--cache-size", "32", "--executor", "thread",
                "--workers", "3",
            ]
        )
        assert code == 0
        assert captured["host"] == "0.0.0.0"
        assert captured["port"] == 9001
        assert captured["cache_size"] == 32
        assert captured["executor_mode"] == "thread"
        assert captured["max_workers"] == 3
