"""Fast-vs-protocol equivalence: the oracle paths must be bit-identical.

The direct-computation constructors (:mod:`repro.protocols.cds_fast`,
:mod:`repro.protocols.ldel_fast`) claim to reproduce the
message-passing protocols exactly — same sets, same certified edges,
same round counts, same per-node/per-kind message ledgers.  This suite
pins that claim over the sharding deployments (random, degenerate
grid, collinear, tile-boundary-straddling, dense) plus ID-permuted
variants, and adds the Lemma 3 property test (constant messages per
node on the protocol path, independent of n at fixed density).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spanner import build_backbone
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.cds import build_cds_family
from repro.protocols.cds_fast import fast_clustering, fast_connectors
from repro.protocols.clustering import (
    highest_degree_priority,
    lowest_id_priority,
    run_clustering,
)
from repro.protocols.connectors import run_connectors
from repro.protocols.ldel_fast import fast_ldel_protocol
from repro.protocols.ldel_protocol import run_ldel_protocol
from repro.sim.stats import MessageStats
from test_sharding import DEPLOYMENTS

RADIUS = 25.0

PRIORITIES = {
    "lowest-id": lowest_id_priority,
    "highest-degree": highest_degree_priority,
}


def _permuted(points, seed=4):
    """The same deployment with node ids shuffled (ids drive every
    election tie-break, so this is the adversarial re-labeling case)."""
    shuffled = list(points)
    random.Random(seed).shuffle(shuffled)
    return shuffled


def _deployments():
    cases = [(name, make()) for name, make in sorted(DEPLOYMENTS.items())]
    cases += [
        (f"{name}-permuted", _permuted(make())) for name, make in sorted(DEPLOYMENTS.items())
    ]
    return cases


def assert_same_stats(fast: MessageStats, protocol: MessageStats) -> None:
    assert fast.per_node == protocol.per_node
    assert fast.per_kind == protocol.per_kind
    assert fast.per_node_kind == protocol.per_node_kind


@pytest.fixture(params=[name for name, _ in _deployments()])
def deployment(request):
    cases = dict(_deployments())
    return UnitDiskGraph([tuple(p) for p in cases[request.param]], RADIUS)


class TestFastClustering:
    @pytest.mark.parametrize("priority", sorted(PRIORITIES))
    def test_bit_identical(self, deployment, priority):
        protocol = run_clustering(deployment, priority=PRIORITIES[priority])
        fast = fast_clustering(deployment, priority=PRIORITIES[priority])
        assert fast.dominators == protocol.dominators
        assert fast.dominators_of == protocol.dominators_of
        assert fast.rounds == protocol.rounds
        assert_same_stats(fast.stats, protocol.stats)

    def test_empty_graph(self):
        udg = UnitDiskGraph([], RADIUS)
        outcome = fast_clustering(udg)
        assert outcome.dominators == frozenset()
        assert outcome.rounds == 0


class TestFastConnectors:
    @pytest.mark.parametrize("election", ["smallest-id", "first-response"])
    @pytest.mark.parametrize("rebroadcast", [False, True])
    def test_bit_identical(self, deployment, election, rebroadcast):
        clustering = run_clustering(deployment)
        protocol = run_connectors(
            deployment, clustering, election=election,
            rebroadcast_dominatees=rebroadcast,
        )
        fast = fast_connectors(
            deployment, clustering, election=election,
            rebroadcast_dominatees=rebroadcast,
        )
        assert fast.connectors == protocol.connectors
        assert fast.cds_edges == protocol.cds_edges
        assert fast.rounds == protocol.rounds
        assert_same_stats(fast.stats, protocol.stats)

    def test_unknown_election_rejected(self):
        udg = UnitDiskGraph([(0.0, 0.0)], RADIUS)
        with pytest.raises(ValueError, match="unknown election"):
            fast_connectors(udg, fast_clustering(udg), election="coin-flip")


class TestFastLDel:
    def test_bit_identical(self, deployment):
        protocol = run_ldel_protocol(deployment)
        fast = fast_ldel_protocol(deployment)
        assert fast.graph.edge_set() == protocol.graph.edge_set()
        assert fast.graph.name == protocol.graph.name
        assert fast.triangles == protocol.triangles
        assert fast.gabriel_edges == protocol.gabriel_edges
        assert fast.rounds == protocol.rounds
        assert_same_stats(fast.stats, protocol.stats)


class TestFastPipeline:
    @pytest.mark.parametrize("election", ["smallest-id", "first-response"])
    def test_full_pipeline_bit_identical(self, deployment, election):
        points = [tuple(p) for p in deployment.positions]
        protocol = build_backbone(points, RADIUS, election=election)
        fast = build_backbone(points, RADIUS, election=election, mode="fast")
        assert fast.dominators == protocol.dominators
        assert fast.connectors == protocol.connectors
        for attr in ("cds", "cds_prime", "icds", "icds_prime",
                     "ldel_icds", "ldel_icds_prime"):
            assert getattr(fast, attr).edge_set() == getattr(protocol, attr).edge_set(), attr
        for attr in ("stats_cds", "stats_icds", "stats_ldel"):
            assert_same_stats(getattr(fast, attr), getattr(protocol, attr))
        assert protocol.pipeline.mode == "protocol"
        assert fast.pipeline.mode == "fast"
        assert set(fast.pipeline.timings) == {"cds", "ldel"}

    def test_unknown_mode_rejected(self):
        udg = UnitDiskGraph([(0.0, 0.0)], RADIUS)
        with pytest.raises(ValueError, match="unknown mode"):
            build_cds_family(udg, mode="warp")


#: Empirical ceiling for Lemma 3: at the paper's density (uniform
#: points in a 10*sqrt(n) square, radius 25) the observed per-node
#: maximum for the whole CDS phase plateaus around 54 messages and
#: does not grow with n; 80 leaves headroom for unlucky seeds while
#: still failing loudly if the bound ever becomes n-dependent.
LEMMA3_BOUND = 80


def _max_messages_per_node(n: int, seed: int) -> int:
    rng = random.Random(seed)
    side = 10.0 * math.sqrt(n)
    pts = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]
    udg = UnitDiskGraph(pts, RADIUS)
    clustering = run_clustering(udg)
    connectors = run_connectors(udg, clustering)
    total = MessageStats()
    total.merge(clustering.stats)
    total.merge(connectors.stats)
    return max(total.per_node.values())


class TestLemma3MessageBound:
    def test_bound_does_not_grow_with_n(self):
        maxima = {n: _max_messages_per_node(n, seed=2002) for n in (100, 250, 500)}
        assert all(m <= LEMMA3_BOUND for m in maxima.values()), maxima

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_constant_per_node_property(self, seed):
        assert _max_messages_per_node(150, seed) <= LEMMA3_BOUND


class TestShardedElection:
    def test_reversed_id_chain_falls_back_and_stays_exact(self):
        """Descending ids along a line make every MIS decision depend on
        the previous one — the certification chain escapes any constant
        halo, so the per-tile election must flag unresolved nodes and
        the coordinator reconciliation must still match the protocol."""
        from repro.sharding.build import sharded_backbone

        n = 120
        pts = [((n - 1 - i) * 20.0, 0.0) for i in range(n)]
        serial = build_backbone(pts, RADIUS)
        result, stats = sharded_backbone(
            pts, RADIUS, shards=6, executor_mode="serial"
        )
        assert stats.counters["election_unresolved"] > 0
        assert result.dominators == serial.dominators
        assert result.connectors == serial.connectors
        assert result.ldel_icds.edge_set() == serial.ldel_icds.edge_set()

    def test_counters_present(self):
        from repro.sharding.build import sharded_backbone

        pts = [p for p in DEPLOYMENTS["boundary"]()]
        _, stats = sharded_backbone(
            [tuple(p) for p in pts], RADIUS, shards=4, executor_mode="serial"
        )
        assert "election_certified" in stats.counters
        assert "election_unresolved" in stats.counters
        assert "election" in stats.phase_seconds
        total = (
            stats.counters["election_certified"]
            + stats.counters["election_unresolved"]
        )
        assert total == len(pts)
