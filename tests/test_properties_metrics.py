"""Property-based tests for the metrics and verification layers."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.metrics import hop_stretch, length_stretch
from repro.core.verify import verify_spanner
from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.topology.gabriel import gabriel_graph
from repro.topology.rng import relative_neighborhood_graph

deployments = st.lists(
    st.tuples(st.integers(0, 18), st.integers(0, 18)),
    min_size=4,
    max_size=22,
    unique=True,
).map(lambda pts: [Point(x / 2.0, y / 2.0) for x, y in pts])

RADIUS = 3.0

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@slow
@given(deployments)
def test_stretch_at_least_one(points):
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    for stats in (length_stretch(gg, udg), hop_stretch(gg, udg)):
        if stats.pairs:
            assert stats.avg >= 1.0 - 1e-9
            assert stats.max >= stats.avg - 1e-9


@slow
@given(deployments)
def test_subgraph_monotonicity(points):
    """Removing edges can only worsen (or keep) the stretch."""
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    rng_graph = relative_neighborhood_graph(udg)  # RNG ⊆ GG
    gg_stats = length_stretch(gg, udg)
    rng_stats = length_stretch(rng_graph, udg)
    if gg_stats.pairs and rng_stats.pairs:
        assert rng_stats.max >= gg_stats.max - 1e-9


@slow
@given(deployments)
def test_verify_agrees_with_measured_max(points):
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    stats = length_stretch(gg, udg)
    if not stats.pairs:
        return
    # Just above the measured max: holds.
    assert verify_spanner(gg, udg, claimed=float(stats.max) + 1e-6).holds
    # Just below (when max > 1): violated, and the worst witness
    # reproduces the measured max.
    if stats.max > 1.0 + 1e-9:
        verdict = verify_spanner(
            gg, udg, claimed=float(stats.max) - 1e-6, max_witnesses=10_000
        )
        assert not verdict.holds
        assert verdict.worst.ratio == pytest.approx(float(stats.max), rel=1e-9)


@slow
@given(deployments)
def test_hop_stretch_integral_numerators(points):
    """Hop stretch ratios are ratios of integers: k / m."""
    udg = UnitDiskGraph(points, RADIUS)
    gg = gabriel_graph(udg)
    stats = hop_stretch(gg, udg)
    if stats.pairs:
        # max = k/m with m <= diameter; sanity: multiplying by some
        # m <= n yields an integer.
        found = any(
            abs(stats.max * m - round(stats.max * m)) < 1e-6
            for m in range(1, udg.node_count + 1)
        )
        assert found
