"""Tests for the distributed clustering (MIS election) protocol."""



from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import (
    centralized_mis,
    highest_degree_priority,
    lowest_id_priority,
    run_clustering,
)
from repro.sim.messages import HELLO, IAM_DOMINATEE, IAM_DOMINATOR


def line_udg(n, spacing=1.0, radius=1.0):
    return UnitDiskGraph([Point(i * spacing, 0.0) for i in range(n)], radius)


class TestElectionOutcome:
    def test_single_node_is_dominator(self):
        udg = UnitDiskGraph([Point(0, 0)], 1.0)
        outcome = run_clustering(udg)
        assert outcome.dominators == {0}

    def test_line_of_three(self):
        # 0 wins (smallest ID); 2 wins after 1 becomes dominatee.
        udg = line_udg(3)
        outcome = run_clustering(udg)
        assert outcome.dominators == {0, 2}
        assert outcome.dominators_of[1] == {0, 2}

    def test_chain_election_cascade(self):
        # IDs increase along the line: elections cascade one by one,
        # the worst case for round count.
        udg = line_udg(9)
        outcome = run_clustering(udg)
        assert outcome.dominators == {0, 2, 4, 6, 8}

    def test_matches_centralized_greedy(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            outcome = run_clustering(udg)
            assert outcome.dominators == centralized_mis(udg)


class TestMisProperties:
    def test_independence(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            doms = run_clustering(udg).dominators
            for u in doms:
                assert not (udg.neighbors(u) & doms)

    def test_domination(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            outcome = run_clustering(udg)
            doms = outcome.dominators
            for u in udg.nodes():
                assert u in doms or (udg.neighbors(u) & doms)

    def test_maximality(self, small_deployments):
        # No node could be added: every non-dominator has a dominator
        # neighbor (same as domination for MIS).
        for dep in small_deployments:
            udg = dep.udg()
            outcome = run_clustering(udg)
            for u in udg.nodes():
                if u not in outcome.dominators:
                    assert udg.neighbors(u) & outcome.dominators

    def test_lemma1_at_most_five_dominators(self, small_deployments):
        """Paper Lemma 1: a dominatee has at most 5 adjacent dominators."""
        for dep in small_deployments:
            outcome = run_clustering(dep.udg())
            for doms in outcome.dominators_of.values():
                assert len(doms) <= 5

    def test_dominators_of_lists_actual_neighbors(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            outcome = run_clustering(udg)
            for node, doms in outcome.dominators_of.items():
                for d in doms:
                    assert udg.has_edge(node, d)
                    assert d in outcome.dominators


class TestMessageAccounting:
    def test_hello_once_per_node(self, deployment):
        udg = deployment.udg()
        outcome = run_clustering(udg)
        assert outcome.stats.per_kind[HELLO] == udg.node_count

    def test_dominator_message_once_per_dominator(self, deployment):
        udg = deployment.udg()
        outcome = run_clustering(udg)
        assert outcome.stats.per_kind[IAM_DOMINATOR] == len(outcome.dominators)

    def test_dominatee_messages_bounded_by_lemma1(self, deployment):
        udg = deployment.udg()
        outcome = run_clustering(udg)
        for node in udg.nodes():
            sent = outcome.stats.per_node_kind.get((node, IAM_DOMINATEE), 0)
            assert sent <= 5

    def test_constant_messages_per_node(self, deployment):
        # Hello + IamDominator/IamDominatee(<=5): at most 6.
        udg = deployment.udg()
        outcome = run_clustering(udg)
        assert outcome.stats.max_per_node() <= 6


class TestPriorityVariants:
    def test_highest_degree_priority_orders_by_degree(self):
        assert highest_degree_priority(5, 10) < highest_degree_priority(1, 3)

    def test_lowest_id_ignores_degree(self):
        assert lowest_id_priority(1, 99) < lowest_id_priority(2, 1)

    def test_highest_degree_election_runs(self, small_deployments):
        for dep in small_deployments[:2]:
            udg = dep.udg()
            outcome = run_clustering(udg, priority=highest_degree_priority)
            # Still a valid MIS.
            for u in outcome.dominators:
                assert not (udg.neighbors(u) & outcome.dominators)
            for u in udg.nodes():
                assert u in outcome.dominators or (
                    udg.neighbors(u) & outcome.dominators
                )

    def test_star_elects_hub_under_degree_priority(self):
        pts = [Point(0, 0)] + [Point(1.0, 0.01 * i) for i in range(1, 6)]
        udg = UnitDiskGraph(pts, 1.1)
        # Give the hub a *large* ID so lowest-id would not pick it alone.
        outcome = run_clustering(udg, priority=highest_degree_priority)
        assert 0 in outcome.dominators
