"""Tests for the incremental session endpoints of the service layer.

Most tests drive :class:`SpannerService` directly (the HTTP layer is
a thin JSON shim); one integration test pays for sockets and walks the
full ``POST /session`` -> ``step`` -> ``GET`` -> ``DELETE`` lifecycle.
"""

import json
import urllib.request

import pytest

from repro.service.server import BackgroundServer, ServiceError, SpannerService

SCENARIO = {
    "generator": "uniform",
    "nodes": 50,
    "side": 150.0,
    "radius": 40.0,
    "seed": 3,
}


@pytest.fixture()
def service():
    return SpannerService(executor_mode="serial", cache_size=8)


def open_session(service):
    return service.session_create({"scenario": SCENARIO})


class TestSessionLifecycle:
    def test_create_returns_summary(self, service):
        created = open_session(service)
        assert created["session"] == "s1"
        assert created["nodes"] == 50
        assert created["radius"] == 40.0
        assert created["udg_edges"] > 0
        assert created["dominators"] > 0

    def test_ids_are_unique(self, service):
        assert open_session(service)["session"] != open_session(service)["session"]

    def test_step_streams_topology_delta(self, service):
        sid = open_session(service)["session"]
        moved = service.session_step(
            sid,
            {
                "events": [{"kind": "move", "node": 0, "x": 10.0, "y": 10.0}],
                "verify": True,
            },
        )
        assert moved["session"] == sid
        assert moved["step"] == 1
        assert moved["events"] == 1
        assert moved["verified"] is True
        assert isinstance(moved["edges_added"], list)
        assert isinstance(moved["edges_removed"], list)

    def test_join_and_leave_through_the_api(self, service):
        sid = open_session(service)["session"]
        joined = service.session_step(
            sid,
            {"events": [{"kind": "join", "x": 75.0, "y": 75.0}], "verify": True},
        )
        assert joined["node_count"] == 51
        assert joined["verified"] is True
        left = service.session_step(
            sid, {"events": [{"kind": "leave", "node": 12}], "verify": True}
        )
        assert left["node_count"] == 50
        assert left["verified"] is True

    def test_get_reports_cumulative_counters(self, service):
        sid = open_session(service)["session"]
        for node in (1, 2):
            service.session_step(
                sid,
                {"events": [{"kind": "move", "node": node, "x": 20.0, "y": 20.0}]},
            )
        info = service.session_get(sid)
        assert info["steps"] == 2
        assert info["counters"]["steps"] == 2
        assert info["counters"]["events"] == 2
        assert info["backbone_nodes"] > 0

    def test_delete_closes_the_session(self, service):
        sid = open_session(service)["session"]
        closed = service.session_delete(sid)
        assert closed == {"session": sid, "closed": True, "steps": 0}
        with pytest.raises(ServiceError) as err:
            service.session_get(sid)
        assert err.value.status == 404


class TestSessionValidation:
    def test_missing_scenario_rejected(self, service):
        with pytest.raises(ServiceError) as err:
            service.session_create({})
        assert err.value.status == 400

    def test_bad_scenario_rejected(self, service):
        with pytest.raises(ServiceError) as err:
            service.session_create({"scenario": {"corpus": "no-such-corpus"}})
        assert err.value.status == 400

    def test_bad_tile_cells_rejected(self, service):
        with pytest.raises(ServiceError) as err:
            service.session_create({"scenario": SCENARIO, "tile_cells": 0})
        assert err.value.status == 400

    def test_unknown_session_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.session_step("nope", {"events": []})
        assert err.value.status == 404

    def test_events_must_be_a_list(self, service):
        sid = open_session(service)["session"]
        with pytest.raises(ServiceError) as err:
            service.session_step(sid, {"events": "move 3"})
        assert err.value.status == 400

    def test_malformed_event_rejected(self, service):
        sid = open_session(service)["session"]
        with pytest.raises(ServiceError) as err:
            service.session_step(sid, {"events": [{"kind": "move", "node": 1}]})
        assert err.value.status == 400


class TestSessionMetrics:
    def test_incremental_counters_surface_in_metrics(self, service):
        sid = open_session(service)["session"]
        service.session_step(
            sid,
            {
                "events": [{"kind": "move", "node": 4, "x": 30.0, "y": 30.0}],
                "verify": True,
            },
        )
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["incremental.sessions"] == 1
        assert counters["incremental.steps"] == 1
        assert counters["incremental.events"] == 1
        assert counters["incremental.verifications"] == 1
        assert "incremental.verification_failures" not in counters
        assert "incremental.step" in snapshot["latency"]
        assert any(
            name.startswith("incremental.phase.")
            for name in snapshot["latency"]
        )
        assert "incremental.dirty_fraction" in snapshot["latency"]
        assert snapshot["sessions"]["active"] == 1
        service.session_delete(sid)
        assert service.metrics_snapshot()["sessions"]["active"] == 0


def _request(url, method="GET", payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestSessionHTTP:
    def test_full_lifecycle_over_http(self):
        with BackgroundServer(executor_mode="serial") as server:
            status, created = _request(
                server.url + "/session", "POST", {"scenario": SCENARIO}
            )
            assert status == 200
            sid = created["session"]

            status, stepped = _request(
                server.url + f"/session/{sid}/step",
                "POST",
                {
                    "events": [
                        {"kind": "move", "node": 2, "x": 11.0, "y": 12.0}
                    ],
                    "verify": True,
                },
            )
            assert status == 200
            assert stepped["verified"] is True

            status, info = _request(server.url + f"/session/{sid}")
            assert status == 200
            assert info["steps"] == 1

            status, metrics = _request(server.url + "/metrics")
            assert status == 200
            assert metrics["counters"]["incremental.steps"] == 1

            status, closed = _request(
                server.url + f"/session/{sid}", "DELETE"
            )
            assert status == 200
            assert closed["closed"] is True

            status, body = _request(server.url + f"/session/{sid}")
            assert status == 404

    def test_unknown_session_paths_over_http(self):
        with BackgroundServer(executor_mode="serial") as server:
            status, _ = _request(
                server.url + "/session/zzz/step", "POST", {"events": []}
            )
            assert status == 404
            status, _ = _request(server.url + "/session/zzz", "DELETE")
            assert status == 404
            status, _ = _request(
                server.url + "/session/a/b/c", "POST", {"events": []}
            )
            assert status == 404
