"""The validation-farm scenario families and the quasi-UDG radio model."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.paths import is_connected
from repro.graphs.quasi import QuasiUnitDiskGraph, gray_link_alive, induced_radio_subgraph
from repro.graphs.udg import UnitDiskGraph
from repro.workloads.generators import (
    GENERATORS,
    Deployment,
    QuasiDeployment,
    connected_udg_instance,
    gradient_points,
    hotspot_points,
    mobility_snapshot_points,
    obstacle_points,
    uniform_points,
)
from repro.workloads.io import (
    deployment_fingerprint,
    deployment_from_dict,
    deployment_to_dict,
)


class TestHotspotPoints:
    def test_count_and_bounds(self, rng):
        pts = hotspot_points(60, 100.0, rng)
        assert len(pts) == 60
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            hotspot_points(-1, 100.0, rng)

    def test_needs_a_hotspot(self, rng):
        with pytest.raises(ValueError):
            hotspot_points(10, 100.0, rng, hotspots=0)

    def test_background_fraction_validated(self, rng):
        with pytest.raises(ValueError):
            hotspot_points(10, 100.0, rng, background_fraction=1.5)

    def test_pure_hotspots_are_tight(self, rng):
        # No background, one hotspot, tiny spread: everything bunches.
        pts = hotspot_points(
            40, 100.0, rng, hotspots=1, background_fraction=0.0, spread_fraction=0.01
        )
        xs = [p.x for p in pts]
        assert max(xs) - min(xs) < 20.0

    def test_deterministic_per_seed(self):
        a = hotspot_points(30, 80.0, random.Random(5))
        b = hotspot_points(30, 80.0, random.Random(5))
        assert a == b


class TestGradientPoints:
    def test_count_and_bounds(self, rng):
        pts = gradient_points(80, 100.0, rng)
        assert len(pts) == 80
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)

    def test_density_increases_along_x(self, rng):
        # With gamma=2 the mean of x/side is 3/4; far from uniform's 1/2.
        pts = gradient_points(400, 100.0, rng, gamma=2.0)
        mean_x = sum(p.x for p in pts) / len(pts)
        assert mean_x > 65.0

    def test_gamma_zero_is_uniform_marginal(self, rng):
        pts = gradient_points(400, 100.0, rng, gamma=0.0)
        mean_x = sum(p.x for p in pts) / len(pts)
        assert 40.0 < mean_x < 60.0

    def test_negative_gamma_raises(self, rng):
        with pytest.raises(ValueError):
            gradient_points(10, 100.0, rng, gamma=-1.0)


class TestObstaclePoints:
    def test_confined_to_cross(self, rng):
        side = 100.0
        frac = 0.3
        pts = obstacle_points(80, side, rng, corridor_fraction=frac)
        half = 0.5 * frac * side
        assert len(pts) == 80
        assert all(
            abs(p.x - side / 2) <= half or abs(p.y - side / 2) <= half for p in pts
        )

    def test_corridor_fraction_validated(self, rng):
        with pytest.raises(ValueError):
            obstacle_points(10, 100.0, rng, corridor_fraction=0.0)


class TestMobilitySnapshotPoints:
    def test_count_and_bounds(self, rng):
        pts = mobility_snapshot_points(40, 100.0, rng)
        assert len(pts) == 40
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)

    def test_deterministic_per_seed(self):
        a = mobility_snapshot_points(25, 100.0, random.Random(11))
        b = mobility_snapshot_points(25, 100.0, random.Random(11))
        assert a == b

    def test_warmup_validated(self, rng):
        with pytest.raises(ValueError):
            mobility_snapshot_points(10, 100.0, rng, warmup=-1.0)
        with pytest.raises(ValueError):
            mobility_snapshot_points(10, 100.0, rng, warmup_steps=0)

    def test_registry_names_every_family(self):
        assert set(GENERATORS) == {
            "uniform", "clustered", "grid", "corridor",
            "hotspot", "gradient", "obstacle", "mobility",
        }


class TestGrayLinkHash:
    def test_order_independent(self):
        assert gray_link_alive(7, 3, 9, 0.5) == gray_link_alive(7, 9, 3, 0.5)

    def test_deterministic(self):
        assert gray_link_alive(42, 1, 2, 0.5) == gray_link_alive(42, 1, 2, 0.5)

    def test_probability_extremes(self):
        assert not gray_link_alive(0, 1, 2, 0.0)
        assert gray_link_alive(0, 1, 2, 1.0)

    def test_empirical_keep_rate(self):
        # The hash maps to [0, 1) ~uniformly: over many pairs, the keep
        # rate tracks the probability.
        kept = sum(gray_link_alive(3, u, u + 1, 0.6) for u in range(2000))
        assert 0.55 < kept / 2000 < 0.65


class TestQuasiUnitDiskGraph:
    @pytest.fixture(scope="class")
    def points(self):
        return uniform_points(60, 150.0, random.Random(31337))

    def test_edges_subset_of_udg(self, points):
        udg = UnitDiskGraph(points, 60.0)
        quasi = QuasiUnitDiskGraph(points, 60.0, epsilon=0.7, link_seed=1)
        assert quasi.edge_set() <= udg.edge_set()

    def test_zone_rules(self, points):
        eps, r = 0.7, 60.0
        quasi = QuasiUnitDiskGraph(points, r, epsilon=eps, link_seed=1)
        from repro.geometry.primitives import dist_sq

        for u in range(quasi.node_count):
            for v in range(u + 1, quasi.node_count):
                d_sq = dist_sq(points[u], points[v])
                if d_sq <= (eps * r) ** 2:
                    assert quasi.has_edge(u, v)  # reliable zone
                elif d_sq > r**2:
                    assert not quasi.has_edge(u, v)  # out of range

    def test_epsilon_one_is_plain_udg(self, points):
        udg = UnitDiskGraph(points, 60.0)
        quasi = QuasiUnitDiskGraph(points, 60.0, epsilon=1.0, link_seed=9)
        assert quasi.edge_set() == udg.edge_set()

    def test_same_seed_same_links(self, points):
        a = QuasiUnitDiskGraph(points, 60.0, epsilon=0.7, link_seed=5)
        b = QuasiUnitDiskGraph(points, 60.0, epsilon=0.7, link_seed=5)
        assert a.edge_set() == b.edge_set()

    def test_disk_rule_flag(self, points):
        assert UnitDiskGraph.adjacency_is_disk_rule
        assert not QuasiUnitDiskGraph.adjacency_is_disk_rule

    def test_parameter_validation(self, points):
        with pytest.raises(ValueError):
            QuasiUnitDiskGraph(points, 60.0, epsilon=0.0)
        with pytest.raises(ValueError):
            QuasiUnitDiskGraph(points, 60.0, keep_probability=1.5)

    def test_induced_subgraph_keeps_dropped_links_dropped(self, points):
        quasi = QuasiUnitDiskGraph(points, 60.0, epsilon=0.7, link_seed=1)
        nodes = list(range(0, quasi.node_count, 2))
        sub = induced_radio_subgraph(quasi, nodes)
        for a in range(sub.node_count):
            for b in range(a + 1, sub.node_count):
                assert sub.has_edge(a, b) == quasi.has_edge(nodes[a], nodes[b])


class TestConnectedQuasiInstance:
    def test_returns_connected_quasi(self, rng):
        dep = connected_udg_instance(25, 150.0, 60.0, rng, model="quasi", epsilon=0.7)
        assert isinstance(dep, QuasiDeployment)
        assert isinstance(dep.udg(), QuasiUnitDiskGraph)
        assert is_connected(dep.udg())

    def test_unknown_model_rejected(self, rng):
        with pytest.raises(ValueError):
            connected_udg_instance(10, 100.0, 50.0, rng, model="fso")


# Finite coordinates that survive a JSON round-trip bit-exactly.
_coords = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    ),
    min_size=0,
    max_size=20,
)


class TestDeploymentRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(coords=_coords, radius=st.floats(min_value=1.0, max_value=100.0))
    def test_plain_round_trip(self, coords, radius):
        from repro.geometry.primitives import Point

        dep = Deployment(
            points=tuple(Point(x, y) for x, y in coords), side=500.0, radius=radius
        )
        back = deployment_from_dict(json.loads(json.dumps(deployment_to_dict(dep))))
        assert back == dep
        assert deployment_fingerprint(back) == deployment_fingerprint(dep)

    @settings(max_examples=25, deadline=None)
    @given(
        coords=_coords,
        epsilon=st.floats(min_value=0.1, max_value=1.0),
        link_seed=st.integers(min_value=0, max_value=2**32 - 1),
        keep=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quasi_round_trip(self, coords, epsilon, link_seed, keep):
        from repro.geometry.primitives import Point

        dep = QuasiDeployment(
            points=tuple(Point(x, y) for x, y in coords),
            side=500.0,
            radius=60.0,
            epsilon=epsilon,
            link_seed=link_seed,
            keep_probability=keep,
        )
        back = deployment_from_dict(json.loads(json.dumps(deployment_to_dict(dep))))
        assert isinstance(back, QuasiDeployment)
        assert back == dep
        assert deployment_fingerprint(back) == deployment_fingerprint(dep)

    def test_model_changes_fingerprint(self):
        from repro.geometry.primitives import Point

        pts = (Point(0.0, 0.0), Point(10.0, 0.0))
        plain = Deployment(points=pts, side=100.0, radius=60.0)
        quasi = QuasiDeployment(points=pts, side=100.0, radius=60.0, link_seed=1)
        assert deployment_fingerprint(plain) != deployment_fingerprint(quasi)

    def test_unknown_model_kind_rejected(self):
        doc = deployment_to_dict(Deployment(points=(), side=10.0, radius=5.0))
        doc["model"] = {"kind": "fso"}
        with pytest.raises(ValueError):
            deployment_from_dict(doc)
