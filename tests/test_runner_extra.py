"""Unit tests for the newer experiment-runner functions."""

import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    deployment_sensitivity,
    format_rows,
    message_breakdown,
    table1,
)

SMOKE = ExperimentConfig(instances=2, seed=11)


class TestMessageBreakdown:
    @pytest.fixture(scope="class")
    def kinds(self):
        return message_breakdown(n=25, config=SMOKE)

    def test_expected_kinds_present(self, kinds):
        for kind in ("Hello", "IamDominator", "TryConnector", "Status"):
            assert kind in kinds

    def test_hello_and_status_exactly_one_per_node(self, kinds):
        assert kinds["Hello"] == pytest.approx(1.0)
        assert kinds["Status"] == pytest.approx(1.0)

    def test_values_non_negative(self, kinds):
        assert all(v >= 0 for v in kinds.values())

    def test_total_matches_ledger_scale(self, kinds):
        # Per-node total stays a small constant.
        assert 3.0 < sum(kinds.values()) < 40.0


class TestDeploymentSensitivity:
    @pytest.fixture(scope="class")
    def results(self):
        return deployment_sensitivity(
            n=25,
            generators=("uniform", "grid"),
            config=ExperimentConfig(instances=2, seed=11),
        )

    def test_all_generators_reported(self, results):
        assert set(results) == {"uniform", "grid"}

    def test_metric_keys(self, results):
        for values in results.values():
            assert set(values) == {
                "backbone deg max",
                "length avg",
                "hop avg",
                "comm max",
                "backbone fraction",
            }

    def test_invariants_hold_per_generator(self, results):
        for generator, values in results.items():
            assert values["length avg"] >= 1.0, generator
            assert values["hop avg"] >= 1.0, generator
            assert 0.0 < values["backbone fraction"] <= 1.0, generator


class TestStdDevTracking:
    def test_stddev_zero_with_one_sample(self):
        rows = table1(n=20, radius=60.0, config=ExperimentConfig(instances=1, seed=4))
        assert rows[0].stddev("deg_avg") == 0.0
        assert rows[0].samples == 1

    def test_stddev_positive_with_many_samples(self):
        rows = table1(n=20, radius=60.0, config=ExperimentConfig(instances=3, seed=4))
        udg_row = rows[0]
        assert udg_row.samples == 3
        assert udg_row.stddev("edges") > 0.0

    def test_format_with_std_columns(self):
        rows = table1(n=20, radius=60.0, config=ExperimentConfig(instances=2, seed=4))
        text = format_rows(rows, with_std=True)
        assert "±deg" in text and "±edges" in text
        plain = format_rows(rows)
        assert "±deg" not in plain

    def test_unknown_quantity_is_zero(self):
        rows = table1(n=20, radius=60.0, config=ExperimentConfig(instances=2, seed=4))
        assert rows[0].stddev("nonexistent") == 0.0


class TestRouteBatch:
    @pytest.fixture(scope="class")
    def backbone(self):
        import random

        from repro.core.spanner import build_backbone
        from repro.workloads.generators import connected_udg_instance

        deployment = connected_udg_instance(30, 150.0, 55.0, random.Random(1))
        return build_backbone(deployment.points, deployment.radius)

    def test_matches_direct_calls(self, backbone):
        from repro.experiments.runner import route_batch
        from repro.routing.backbone_routing import backbone_route

        pairs = [(0, 17), (3, 21), (5, 5), (29, 0)]
        outcome = route_batch(backbone, pairs, executor="thread")
        assert outcome.succeeded == len(pairs)
        for (source, target), task in zip(pairs, outcome.outcomes):
            expected = backbone_route(backbone, source, target)
            assert task.value.path == expected.path
            assert task.value.delivered == expected.delivered

    def test_serial_executor(self, backbone):
        from repro.experiments.runner import route_batch

        outcome = route_batch(backbone, [(0, 1)], executor="serial")
        assert outcome.mode == "serial"
        assert outcome.outcomes[0].ok

    def test_routing_quality_summary(self):
        from repro.experiments.runner import routing_quality

        summary = routing_quality(
            n=25, radius=60.0, pairs=20,
            config=ExperimentConfig(instances=1, seed=11),
        )
        assert summary["pairs"] == 20.0
        assert 0.0 <= summary["delivery_rate"] <= 1.0
        # GPSR on the planar backbone delivers everything in-component.
        assert summary["delivery_rate"] == 1.0
        assert summary["hops_avg"] >= 1.0
