"""Tests pitting the paper's theoretical bounds against measurements."""


import pytest

from repro.core.bounds import (
    connectors_per_2hop_pair,
    connectors_per_3hop_pair,
    keil_gutwin_delaunay_stretch,
    ldel_icds_hop_bound_per_link,
    ldel_length_stretch_bound,
    lemma1_max_dominators_per_dominatee,
    lemma2_dominators_within,
    lemma5_hop_bound,
    lemma6_length_bound,
    lemma8_icds_degree_bound,
    yao_stretch,
)
from repro.core.metrics import length_stretch
from repro.core.spanner import build_backbone
from repro.geometry.primitives import dist
from repro.graphs.paths import bfs_hops, dijkstra_lengths
from repro.topology.delaunay_udg import delaunay_graph
from repro.topology.yao import yao_graph


class TestConstantValues:
    def test_lemma1(self):
        assert lemma1_max_dominators_per_dominatee() == 5

    def test_lemma2_values(self):
        assert lemma2_dominators_within(1) == 9
        assert lemma2_dominators_within(2) == 25
        assert lemma2_dominators_within(3) == 49

    def test_lemma2_rejects_negative(self):
        with pytest.raises(ValueError):
            lemma2_dominators_within(-1)

    def test_connector_constants(self):
        assert connectors_per_2hop_pair() == 2
        assert connectors_per_3hop_pair() == 25

    def test_keil_gutwin_value(self):
        assert keil_gutwin_delaunay_stretch() == pytest.approx(2.4184, abs=1e-3)
        assert ldel_length_stretch_bound() >= keil_gutwin_delaunay_stretch()

    def test_yao_stretch_monotone(self):
        assert yao_stretch(8) > yao_stretch(12) > yao_stretch(24) > 1.0
        with pytest.raises(ValueError):
            yao_stretch(6)

    def test_bound_input_validation(self):
        with pytest.raises(ValueError):
            lemma5_hop_bound(-1)
        with pytest.raises(ValueError):
            lemma6_length_bound(-0.5)


class TestBoundsAgainstMeasurements:
    def test_lemma2_on_instances(self, small_deployments):
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            udg = result.udg
            r = udg.radius
            for k in (1, 2):
                bound = lemma2_dominators_within(k)
                for u in udg.nodes():
                    count = sum(
                        1
                        for d in result.dominators
                        if dist(udg.positions[u], udg.positions[d]) <= k * r
                    )
                    assert count <= bound

    def test_lemma5_and_6_on_instances(self, small_deployments):
        for dep in small_deployments[:3]:
            result = build_backbone(dep.points, dep.radius)
            udg = result.udg
            r = udg.radius
            for source in list(udg.nodes())[:6]:
                hops_udg = bfs_hops(udg, source)
                hops_bb = bfs_hops(result.cds_prime, source)
                len_udg = dijkstra_lengths(udg, source)
                len_bb = dijkstra_lengths(result.cds_prime, source)
                for target in udg.nodes():
                    h = hops_udg[target]
                    if h > 1:
                        assert hops_bb[target] <= lemma5_hop_bound(h)
                        # Lemma 6 in unit-normalized lengths.
                        assert len_bb[target] / r <= lemma6_length_bound(
                            len_udg[target] / r
                        )

    def test_lemma8_icds_degree(self, small_deployments):
        bound = lemma8_icds_degree_bound()
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            assert max(result.icds.degrees(), default=0) <= bound

    def test_delaunay_stretch_bound(self, small_deployments):
        # The global Delaunay triangulation against the complete
        # graph: straight-line distance is the Dijkstra baseline on
        # the UDG with infinite radius.
        from repro.graphs.udg import UnitDiskGraph

        dep = small_deployments[0]
        complete = UnitDiskGraph(list(dep.points), 1e9)
        del_graph = delaunay_graph(list(dep.points))
        stats = length_stretch(del_graph, complete)
        assert stats.max <= keil_gutwin_delaunay_stretch() + 1e-9

    def test_yao_stretch_bound_on_instances(self, small_deployments):
        k = 8
        bound = yao_stretch(k)
        for dep in small_deployments:
            udg = dep.udg()
            stats = length_stretch(yao_graph(udg, k), udg)
            assert stats.max <= bound + 1e-9

    def test_ldel_hop_constant_is_finite_and_loose(self, small_deployments):
        # The paper admits this constant is "very large"; verify the
        # measured detours are far below it.
        bound = ldel_icds_hop_bound_per_link()
        assert bound > 100  # the loose area-argument constant
        for dep in small_deployments[:2]:
            result = build_backbone(dep.points, dep.radius)
            for u, v in result.icds.edges():
                hops = bfs_hops(result.ldel_icds, u)[v]
                assert 0 < hops <= bound
