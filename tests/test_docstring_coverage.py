"""Quality gate: every public item is documented.

The documentation deliverable, enforced: every module has a module
docstring, and every symbol exported through a package ``__all__``
carries a docstring (classes, functions, and dataclasses alike).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name} docstring too thin"


PACKAGES = [
    "repro",
    "repro.core",
    "repro.geometry",
    "repro.graphs",
    "repro.topology",
    "repro.sim",
    "repro.protocols",
    "repro.routing",
    "repro.mobility",
    "repro.workloads",
    "repro.experiments",
    "repro.viz",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_symbols_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{package_name}: undocumented {undocumented}"


def test_public_methods_of_key_classes_documented():
    from repro.core.spanner import BackboneResult
    from repro.graphs.graph import Graph
    from repro.sim.stats import MessageStats

    for cls in (Graph, MessageStats, BackboneResult):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert member.__doc__, f"{cls.__name__}.{name} undocumented"
