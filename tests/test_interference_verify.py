"""Tests for interference metrics and the spanner verifier."""

import math

import pytest

from repro.core.interference import interference, link_interference
from repro.core.verify import verify_spanner
from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.topology.gabriel import gabriel_graph
from repro.topology.rng import relative_neighborhood_graph


class TestLinkInterference:
    def test_isolated_link(self):
        g = Graph([Point(0, 0), Point(1, 0)], [(0, 1)])
        assert link_interference(g, 0, 1) == 0

    def test_covered_bystander(self):
        g = Graph([Point(0, 0), Point(1, 0), Point(0.5, 0.5)], [(0, 1)])
        assert link_interference(g, 0, 1) == 1

    def test_bystander_out_of_reach(self):
        g = Graph([Point(0, 0), Point(1, 0), Point(3, 3)], [(0, 1)])
        assert link_interference(g, 0, 1) == 0

    def test_long_links_disturb_more(self):
        pts = [Point(0, 0), Point(5, 0), Point(1, 0.5), Point(2, -0.5), Point(4, 0.5)]
        g = Graph(pts, [(0, 1)])
        assert link_interference(g, 0, 1) == 3


class TestInterferenceStats:
    def test_empty_graph(self):
        stats = interference(Graph([]))
        assert stats.max == 0 and stats.avg == 0.0 and stats.links == 0

    def test_matches_brute_force(self, deployment):
        udg = deployment.udg()
        gg = gabriel_graph(udg)
        stats = interference(gg)
        for (u, v), value in list(stats.per_link.items())[:20]:
            assert value == link_interference(gg, u, v)

    def test_sparse_topologies_interfere_less(self, deployment):
        # The sparseness pitch: shorter kept links disturb fewer nodes.
        udg = deployment.udg()
        rng_graph = relative_neighborhood_graph(udg)
        assert interference(rng_graph).max <= interference(udg).max

    def test_backbone_interference_bounded(self, backbone):
        stats = interference(backbone.ldel_icds)
        assert stats.max <= interference(backbone.udg).max


class TestVerifySpanner:
    def square_world(self):
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        udg = UnitDiskGraph(pts, 2.0)  # complete graph
        ring = Graph(pts, [(0, 1), (1, 2), (2, 3), (0, 3)])
        return udg, ring

    def test_holds_for_generous_bound(self):
        udg, ring = self.square_world()
        verdict = verify_spanner(ring, udg, claimed=2.0)
        assert verdict.holds
        assert verdict.pairs_checked == 6

    def test_witnesses_tight_violation(self):
        udg, ring = self.square_world()
        # Diagonals: ring path 2.0 vs direct sqrt(2) => ratio ~1.414.
        verdict = verify_spanner(ring, udg, claimed=1.2)
        assert not verdict.holds
        assert len(verdict.violations) == 2  # both diagonals
        worst = verdict.worst
        assert worst.ratio == pytest.approx(2.0 / math.sqrt(2.0))

    def test_disconnected_pair_is_violation(self):
        pts = [Point(0, 0), Point(1, 0)]
        udg = UnitDiskGraph(pts, 2.0)
        empty = Graph(pts)
        verdict = verify_spanner(empty, udg, claimed=100.0)
        assert not verdict.holds
        assert verdict.worst.ratio == math.inf

    def test_hops_metric(self):
        udg, ring = self.square_world()
        verdict = verify_spanner(ring, udg, claimed=1.5, metric="hops")
        assert not verdict.holds  # diagonals: 2 hops vs 1

    def test_skip_udg_adjacent(self):
        udg, ring = self.square_world()
        # All pairs are UDG-adjacent in the complete graph.
        verdict = verify_spanner(
            ring, udg, claimed=1.0, skip_udg_adjacent=True
        )
        assert verdict.pairs_checked == 0 and verdict.holds

    def test_witness_cap(self):
        udg, ring = self.square_world()
        verdict = verify_spanner(ring, udg, claimed=1.0, max_witnesses=1)
        assert len(verdict.violations) == 1

    def test_validation(self):
        udg, ring = self.square_world()
        with pytest.raises(ValueError):
            verify_spanner(ring, udg, claimed=0.5)
        with pytest.raises(ValueError):
            verify_spanner(ring, udg, claimed=2.0, metric="power")

    def test_backbone_passes_its_measured_bound(self, backbone):
        from repro.core.metrics import length_stretch

        stats = length_stretch(
            backbone.ldel_icds_prime, backbone.udg, skip_udg_adjacent=True
        )
        verdict = verify_spanner(
            backbone.ldel_icds_prime,
            backbone.udg,
            claimed=stats.max + 1e-6,
            skip_udg_adjacent=True,
        )
        assert verdict.holds

    def test_rng_fails_a_tight_bound_somewhere(self, deployment):
        # RNG is not a constant-factor spanner; find a witness.
        udg = deployment.udg()
        rng_graph = relative_neighborhood_graph(udg)
        verdict = verify_spanner(rng_graph, udg, claimed=1.05)
        assert not verdict.holds
        w = verdict.worst
        assert w.graph_value > 1.05 * w.udg_value
