"""Tests for the Yao-Yao graph and the path-greedy spanner."""

import pytest

from repro.core.metrics import length_stretch
from repro.core.verify import verify_spanner
from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.topology.greedy_spanner import greedy_spanner
from repro.topology.yao import yao_graph
from repro.topology.yao_yao import yao_yao_graph


class TestYaoYao:
    def test_needs_three_cones(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 2.0)
        with pytest.raises(ValueError):
            yao_yao_graph(udg, k=2)

    def test_subgraph_of_yao(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            assert yao_yao_graph(udg, 6).is_subgraph_of(yao_graph(udg, 6))

    def test_degree_at_most_2k(self, small_deployments):
        k = 6
        for dep in small_deployments:
            yy = yao_yao_graph(dep.udg(), k)
            assert max(yy.degrees(), default=0) <= 2 * k

    def test_connected_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            assert is_connected(yao_yao_graph(dep.udg(), 6))

    def test_prunes_the_hub_star(self):
        import math

        n_spokes = 24
        pts = [Point(0, 0)] + [
            Point(
                math.cos(2 * math.pi * i / n_spokes),
                math.sin(2 * math.pi * i / n_spokes),
            )
            for i in range(n_spokes)
        ]
        udg = UnitDiskGraph(pts, 1.05)
        k = 6
        yao = yao_graph(udg, k)
        yy = yao_yao_graph(udg, k)
        assert yy.degree(0) <= 2 * k < yao.degree(0)


class TestGreedySpanner:
    def test_t_below_one_rejected(self, deployment):
        with pytest.raises(ValueError):
            greedy_spanner(deployment.udg(), 0.9)

    @pytest.mark.parametrize("t", [1.2, 1.5, 2.0])
    def test_is_a_t_spanner_by_construction(self, small_deployments, t):
        for dep in small_deployments[:3]:
            udg = dep.udg()
            spanner = greedy_spanner(udg, t)
            verdict = verify_spanner(spanner, udg, claimed=t)
            assert verdict.holds, verdict.worst

    def test_larger_t_means_fewer_edges(self, deployment):
        udg = deployment.udg()
        tight = greedy_spanner(udg, 1.1)
        loose = greedy_spanner(udg, 2.0)
        assert loose.edge_count <= tight.edge_count

    def test_t_one_keeps_every_shortest_path_edge(self):
        # With t = 1 every UDG edge whose endpoints lack an equal-length
        # alternative path must be kept; on a triangle with strict
        # inequalities that is all three edges.
        pts = [Point(0, 0), Point(1, 0), Point(0.4, 0.8)]
        udg = UnitDiskGraph(pts, 2.0)
        spanner = greedy_spanner(udg, 1.0)
        assert spanner.edge_count == 3

    def test_connected(self, deployment):
        udg = deployment.udg()
        assert is_connected(greedy_spanner(udg, 1.5))

    def test_sparser_than_udg_but_tighter_than_backbone(self, deployment, backbone):
        # The yardstick role: the greedy 1.5-spanner achieves stretch
        # <= 1.5 with a fraction of the UDG's edges; the localized
        # backbone is sparser still but with looser (yet constant)
        # stretch.
        udg = deployment.udg()
        greedy = greedy_spanner(udg, 1.5)
        assert greedy.edge_count < udg.edge_count
        g_stretch = length_stretch(greedy, udg)
        b_stretch = length_stretch(
            backbone.ldel_icds_prime, udg, skip_udg_adjacent=True
        )
        assert g_stretch.max <= 1.5 + 1e-9
        assert b_stretch.max >= g_stretch.avg  # looser, as expected
