"""Tests for the distributed LDel protocol (Algorithms 2 + 3)."""


from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.ldel_protocol import run_ldel_protocol
from repro.sim.messages import ACCEPT, KEPT, LOCATION, PROPOSAL, REJECT, STRUCTURE
from repro.topology.ldel import planar_local_delaunay_graph


class TestEquivalenceWithCentralized:
    def test_same_graph_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            distributed = run_ldel_protocol(udg)
            centralized = planar_local_delaunay_graph(udg)
            assert distributed.graph.edge_set() == centralized.graph.edge_set()
            assert set(distributed.triangles) == set(centralized.triangles)
            assert distributed.gabriel_edges == centralized.gabriel_edges

    def test_single_triangle(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8)]
        udg = UnitDiskGraph(pts, 1.2)
        outcome = run_ldel_protocol(udg)
        assert outcome.triangles == ((0, 1, 2),)
        assert outcome.graph.edge_count == 3

    def test_two_isolated_nodes(self):
        pts = [Point(0, 0), Point(5, 5)]
        udg = UnitDiskGraph(pts, 1.0)
        outcome = run_ldel_protocol(udg)
        assert outcome.graph.edge_count == 0
        assert outcome.triangles == ()


class TestProtocolProperties:
    def test_result_is_planar(self, small_deployments):
        for dep in small_deployments:
            outcome = run_ldel_protocol(dep.udg())
            assert is_planar_embedding(outcome.graph)

    def test_result_is_connected(self, small_deployments):
        for dep in small_deployments:
            outcome = run_ldel_protocol(dep.udg())
            assert is_connected(outcome.graph)

    def test_edges_within_radius(self, small_deployments):
        dep = small_deployments[0]
        udg = dep.udg()
        outcome = run_ldel_protocol(udg)
        for u, v in outcome.graph.edges():
            assert udg.edge_length(u, v) <= udg.radius + 1e-9

    def test_fixed_round_count(self, small_deployments):
        # The protocol is a fixed 6-phase pipeline regardless of size.
        rounds = {run_ldel_protocol(dep.udg()).rounds for dep in small_deployments}
        assert len(rounds) == 1


class TestMessageAccounting:
    def test_location_once_per_node(self, deployment):
        udg = deployment.udg()
        outcome = run_ldel_protocol(udg)
        assert outcome.stats.per_kind[LOCATION] == udg.node_count

    def test_structure_and_kept_once_per_node(self, deployment):
        udg = deployment.udg()
        outcome = run_ldel_protocol(udg)
        assert outcome.stats.per_kind[STRUCTURE] == udg.node_count
        assert outcome.stats.per_kind[KEPT] == udg.node_count

    def test_proposals_bounded_by_local_triangles(self, deployment):
        # A node proposes only triangles of its own local Delaunay
        # triangulation, which has O(degree) triangles.
        udg = deployment.udg()
        outcome = run_ldel_protocol(udg)
        for node in udg.nodes():
            proposals = outcome.stats.per_node_kind.get((node, PROPOSAL), 0)
            assert proposals <= 2 * max(udg.degree(node), 1)

    def test_responses_follow_proposals(self, deployment):
        udg = deployment.udg()
        outcome = run_ldel_protocol(udg)
        responses = outcome.stats.per_kind.get(ACCEPT, 0) + outcome.stats.per_kind.get(
            REJECT, 0
        )
        # Every proposal draws at most two responses (the other two
        # vertices), and co-proposed triangles draw fewer.
        assert responses <= 2 * outcome.stats.per_kind[PROPOSAL]
