"""Tests for GraphML/DOT export."""

import xml.etree.ElementTree as ET

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.workloads.export import (
    graph_to_dot,
    graph_to_graphml,
    save_dot,
    save_graphml,
)

networkx = pytest.importorskip("networkx")


def triangle():
    pts = [Point(0, 0), Point(100, 0), Point(50, 80)]
    return Graph(pts, [(0, 1), (1, 2), (0, 2)], name="tri")


class TestGraphml:
    def test_valid_xml(self):
        root = ET.fromstring(graph_to_graphml(triangle()))
        assert root.tag.endswith("graphml")

    def test_round_trips_through_networkx(self, tmp_path):
        g = triangle()
        path = tmp_path / "g.graphml"
        save_graphml(g, path, roles={0: "dominator"})
        loaded = networkx.read_graphml(path)
        assert loaded.number_of_nodes() == 3
        assert loaded.number_of_edges() == 3
        assert loaded.nodes["n0"]["role"] == "dominator"
        assert loaded.nodes["n1"]["x"] == pytest.approx(100.0)
        lengths = sorted(d["length"] for _u, _v, d in loaded.edges(data=True))
        assert lengths[-1] == pytest.approx(100.0)

    def test_backbone_export(self, backbone, tmp_path):
        roles = {u: backbone.role_of(u) for u in backbone.udg.nodes()}
        path = tmp_path / "bb.graphml"
        save_graphml(backbone.ldel_icds, path, roles=roles)
        loaded = networkx.read_graphml(path)
        assert loaded.number_of_edges() == backbone.ldel_icds.edge_count

    def test_graph_name_escaped(self):
        g = Graph([Point(0, 0)], name='weird "name" <&>')
        text = graph_to_graphml(g)
        ET.fromstring(text)  # must stay well-formed


class TestDot:
    def test_structure(self):
        text = graph_to_dot(triangle(), roles={0: "connector"})
        assert text.startswith("graph tri {")
        assert "n0 -- n1;" in text
        assert 'n0 [pos="0.000,0.000!", shape=box' in text
        assert text.rstrip().endswith("}")

    def test_role_shapes(self):
        text = graph_to_dot(triangle(), roles={0: "dominator", 1: "dominatee"})
        assert "shape=box" in text
        assert "shape=circle" in text

    def test_save(self, tmp_path):
        path = tmp_path / "g.dot"
        save_dot(triangle(), path)
        content = path.read_text()
        assert "graph tri" in content

    def test_weird_name_sanitized(self):
        g = Graph([Point(0, 0)], name="LDel(ICDS')")
        text = graph_to_dot(g)
        assert text.startswith("graph LDel_ICDS__ {")
