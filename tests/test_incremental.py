"""Tests for the incremental spanner maintenance engine.

Every test here leans on the non-negotiable tripwire: after any event
batch, the maintained UDG, roles, and backbone graphs must be
**bit-identical** to a from-scratch rebuild at the current positions
(`IncrementalMaintainer.verify`).
"""

import math
import random

import pytest

from repro.geometry.primitives import Point
from repro.incremental.connectors import IncrementalConnectors
from repro.incremental.engine import IncrementalMaintainer
from repro.incremental.events import Event, parse_event, parse_events
from repro.incremental.session import IncrementalSession, run_incremental_session
from repro.workloads.generators import connected_udg_instance


def make_deployment(n=90, seed=5, radius=25.0):
    """The bench deployment recipe at test scale (constant density)."""
    side = 10.0 * math.sqrt(n)
    return connected_udg_instance(n, side, radius, random.Random(seed))


def make_maintainer(n=90, seed=5):
    dep = make_deployment(n, seed)
    return dep, IncrementalMaintainer(list(dep.points), dep.radius)


def assert_identical(maintainer):
    outcome = maintainer.verify()
    assert outcome["identical"], f"mismatches: {outcome['mismatches']}"


class TestEvents:
    def test_move_needs_node_and_point(self):
        with pytest.raises(ValueError):
            Event("move", x=1.0, y=2.0)
        with pytest.raises(ValueError):
            Event("move", node=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event("teleport", node=0, x=1.0, y=2.0)

    def test_parse_round_trip(self):
        specs = [
            {"kind": "move", "node": 3, "x": 1.5, "y": 2.5},
            {"kind": "join", "x": 0.0, "y": 0.0},
            {"kind": "leave", "node": 7},
        ]
        events = parse_events(specs)
        assert [e.as_dict() for e in events] == specs

    def test_parse_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            parse_event({"kind": 7})
        with pytest.raises(ValueError):
            parse_event({"kind": "move", "node": "three", "x": 1, "y": 2})
        with pytest.raises(ValueError):
            parse_event({"kind": "move", "node": 3, "x": "east", "y": 2})


class TestMaintainerEquivalence:
    def test_initial_state_matches_rebuild(self):
        _, maintainer = make_maintainer()
        assert_identical(maintainer)

    def test_single_moves_stay_bit_identical(self):
        dep, maintainer = make_maintainer(n=120, seed=9)
        n = len(dep.points)
        rng = random.Random(17)
        for step in range(20):
            mover = rng.randrange(n)
            p = maintainer.udg.positions[mover]
            q = Point(
                min(max(p.x + rng.uniform(-12, 12), 0.0), dep.side),
                min(max(p.y + rng.uniform(-12, 12), 0.0), dep.side),
            )
            report = maintainer.apply([Event("move", node=mover, x=q.x, y=q.y)])
            assert report.events == 1
            if step % 4 == 3:
                assert_identical(maintainer)
        assert_identical(maintainer)

    def test_move_batches_stay_bit_identical(self):
        dep, maintainer = make_maintainer(n=120, seed=3)
        n = len(dep.points)
        rng = random.Random(23)
        for step in range(8):
            movers = rng.sample(range(n), 5)
            events = []
            for mover in movers:
                p = maintainer.udg.positions[mover]
                events.append(
                    Event(
                        "move",
                        node=mover,
                        x=min(max(p.x + rng.uniform(-15, 15), 0.0), dep.side),
                        y=min(max(p.y + rng.uniform(-15, 15), 0.0), dep.side),
                    )
                )
            maintainer.apply(events)
            assert_identical(maintainer)

    def test_joins_and_leaves_stay_bit_identical(self):
        dep, maintainer = make_maintainer(n=80, seed=11)
        rng = random.Random(31)
        for _ in range(10):
            n = maintainer.udg.node_count
            roll = rng.random()
            if roll < 0.4:
                anchor = maintainer.udg.positions[rng.randrange(n)]
                events = [
                    Event(
                        "join",
                        x=min(max(anchor.x + rng.uniform(-10, 10), 0.0), dep.side),
                        y=min(max(anchor.y + rng.uniform(-10, 10), 0.0), dep.side),
                    )
                ]
            elif roll < 0.8:
                events = [Event("leave", node=rng.randrange(n))]
            else:
                mover = rng.randrange(n)
                p = maintainer.udg.positions[mover]
                events = [
                    Event(
                        "move",
                        node=mover,
                        x=min(max(p.x + rng.uniform(-12, 12), 0.0), dep.side),
                        y=min(max(p.y + rng.uniform(-12, 12), 0.0), dep.side),
                    )
                ]
            maintainer.apply(events)
            assert_identical(maintainer)

    def test_leave_of_last_id_stays_bit_identical(self):
        _, maintainer = make_maintainer(n=60, seed=2)
        last = maintainer.udg.node_count - 1
        maintainer.apply([Event("leave", node=last)])
        assert maintainer.udg.node_count == last
        assert_identical(maintainer)

    def test_mixed_batch_with_rename_chain(self):
        # A batch whose later events refer to ids recycled earlier in
        # the same batch (the swap-remove convention).
        _, maintainer = make_maintainer(n=60, seed=8)
        n = maintainer.udg.node_count
        p = maintainer.udg.positions[0]
        events = [
            Event("leave", node=0),        # renames n-1 -> 0
            Event("move", node=0, x=p.x + 5.0, y=p.y),  # moves old n-1
            Event("join", x=p.x, y=p.y),   # new node takes id n-1
        ]
        maintainer.apply(events)
        assert maintainer.udg.node_count == n
        assert_identical(maintainer)

    def test_quiet_step_skips_planarizer_work(self):
        _, maintainer = make_maintainer(n=90, seed=5)
        backbone = maintainer.snapshot().backbone_nodes
        free = next(
            u for u in range(maintainer.udg.node_count) if u not in backbone
        )
        p = maintainer.udg.positions[free]
        report = maintainer.apply(
            [Event("move", node=free, x=p.x + 1e-6, y=p.y)]
        )
        # No adjacency, role, or membership change: the planarizer sees
        # no dirt and the connector election is skipped outright.
        assert report.dirty_nodes == 0
        assert report.role_changes == 0
        assert report.edges_added == ()
        assert report.edges_removed == ()
        assert_identical(maintainer)

    def test_report_shape(self):
        dep, maintainer = make_maintainer(n=60, seed=4)
        p = maintainer.udg.positions[10]
        report = maintainer.apply(
            [Event("move", node=10, x=p.x + 20.0, y=p.y)]
        )
        data = report.as_dict()
        for key in (
            "events", "node_count", "appeared_links", "vanished_links",
            "role_changes", "repairs_certified", "repairs_fallback",
            "dirty_tiles", "contest_tiles", "dirty_nodes", "dirty_fraction",
            "edges_added", "edges_removed", "phase_seconds",
        ):
            assert key in data
        assert data["events"] == 1
        assert 0.0 <= data["dirty_fraction"] <= 1.0


class TestIncrementalConnectors:
    def test_update_matches_fresh_rebuild(self):
        dep, maintainer = make_maintainer(n=120, seed=6)
        n = len(dep.points)
        rng = random.Random(77)
        for _ in range(12):
            mover = rng.randrange(n)
            p = maintainer.udg.positions[mover]
            maintainer.apply(
                [
                    Event(
                        "move",
                        node=mover,
                        x=min(max(p.x + rng.uniform(-15, 15), 0.0), dep.side),
                        y=min(max(p.y + rng.uniform(-15, 15), 0.0), dep.side),
                    )
                ]
            )
        fresh = IncrementalConnectors(maintainer.udg)
        fresh.rebuild(maintainer._status, maintainer._doms_of)
        assert fresh.connectors == maintainer._iconn.connectors
        assert fresh.cds_edges == maintainer._iconn.cds_edges


class TestIncrementalSession:
    def test_waypoint_session_all_verified(self):
        dep = make_deployment(n=100, seed=14)
        result = run_incremental_session(
            dep, steps=12, move_fraction=0.05, seed=1, verify_every=3
        )
        assert result.all_verified
        assert result.node_count == 100
        counters = result.counters
        assert counters["steps"] == 12
        assert counters["verifications"] == 4
        assert counters["verification_failures"] == 0
        assert counters["events"] == 12 * max(1, round(0.05 * 100))
        assert 0.0 <= result.mean_dirty_fraction <= 1.0

    def test_session_is_reproducible(self):
        dep = make_deployment(n=80, seed=21)
        a = run_incremental_session(dep, steps=8, seed=5)
        b = run_incremental_session(dep, steps=8, seed=5)
        assert [r.as_dict()["edges_added"] for r in a.reports] == [
            r.as_dict()["edges_added"] for r in b.reports
        ]
        assert a.counters == b.counters

    def test_session_records_verification_failures(self):
        # A session whose maintainer is silently corrupted must report
        # the tripwire failure instead of hiding it.
        dep = make_deployment(n=60, seed=2)
        session = IncrementalSession(
            IncrementalMaintainer(list(dep.points), dep.radius)
        )
        session.maintainer._icds_edges = frozenset({(0, 1)})
        p = session.maintainer.udg.positions[3]
        session.step(
            [Event("move", node=3, x=p.x + 1e-7, y=p.y)], verify=True
        )
        assert session.counters()["verification_failures"] == 1

    def test_bad_arguments_rejected(self):
        dep = make_deployment(n=60, seed=2)
        with pytest.raises(ValueError):
            run_incremental_session(dep, steps=-1)
        with pytest.raises(ValueError):
            run_incremental_session(dep, steps=1, move_fraction=0.0)
