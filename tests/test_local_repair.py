"""Tests for localized backbone repair (the paper's future-work problem)."""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.mobility.local_repair import (
    changed_neighborhoods,
    dilate,
    localized_repair,
    repair_roles,
)
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def wide_world():
    """A large-diameter deployment where locality can pay off."""
    dep = connected_udg_instance(120, 400.0, 48.0, random.Random(23))
    return dep, build_backbone(dep.points, dep.radius)


def perturb(positions, movers, rng, side=400.0, magnitude=12.0):
    out = list(positions)
    for m in movers:
        out[m] = Point(
            min(max(out[m].x + rng.uniform(-magnitude, magnitude), 0.0), side),
            min(max(out[m].y + rng.uniform(-magnitude, magnitude), 0.0), side),
        )
    return out


class TestChangedNeighborhoods:
    def test_no_change(self, wide_world):
        dep, result = wide_world
        udg = result.udg
        assert changed_neighborhoods(udg, udg) == frozenset()

    def test_detects_moved_node(self, wide_world):
        dep, result = wide_world
        rng = random.Random(1)
        positions = perturb(dep.points, [7], rng, magnitude=60.0)
        new_udg = UnitDiskGraph(positions, dep.radius)
        changed = changed_neighborhoods(result.udg, new_udg)
        # A 60-unit jump at radius 48 must change node 7's neighborhood.
        assert 7 in changed
        # And only nodes that gained/lost 7 plus 7 itself change.
        for u in changed:
            assert u == 7 or (
                (7 in result.udg.neighbors(u)) != (7 in new_udg.neighbors(u))
            )


class TestDilate:
    def test_zero_hops_is_identity(self, wide_world):
        _dep, result = wide_world
        seeds = frozenset({3, 9})
        assert dilate(result.udg, seeds, 0) == seeds

    def test_one_hop_adds_neighbors(self, wide_world):
        _dep, result = wide_world
        udg = result.udg
        seeds = frozenset({3})
        assert dilate(udg, seeds, 1) == frozenset({3}) | udg.neighbors(3)

    def test_monotone_in_hops(self, wide_world):
        _dep, result = wide_world
        seeds = frozenset({0})
        d1 = dilate(result.udg, seeds, 1)
        d2 = dilate(result.udg, seeds, 2)
        assert seeds <= d1 <= d2


class TestRepairRoles:
    def test_valid_mis_after_small_move(self, wide_world):
        dep, result = wide_world
        rng = random.Random(2)
        positions = perturb(dep.points, [11, 43], rng)
        new_udg = UnitDiskGraph(positions, dep.radius)
        changed = changed_neighborhoods(result.udg, new_udg)
        dirty = dilate(new_udg, changed, 2)
        dominators = repair_roles(new_udg, result, dirty)
        # Independence.
        for d in dominators:
            assert not (new_udg.neighbors(d) & dominators)
        # Domination.
        for u in new_udg.nodes():
            assert u in dominators or (new_udg.neighbors(u) & dominators)

    def test_outside_roles_frozen(self, wide_world):
        dep, result = wide_world
        rng = random.Random(3)
        positions = perturb(dep.points, [20], rng)
        new_udg = UnitDiskGraph(positions, dep.radius)
        changed = changed_neighborhoods(result.udg, new_udg)
        dirty = dilate(new_udg, changed, 2)
        dominators = repair_roles(new_udg, result, dirty)
        for u in new_udg.nodes():
            if u not in dirty:
                assert (u in dominators) == (u in result.dominators)


class TestLocalizedRepair:
    def test_noop_when_nothing_changed(self, wide_world):
        dep, result = wide_world
        report = localized_repair(result, list(dep.points))
        assert not report.escalated
        assert report.dirty_fraction == 0.0
        assert report.result is result

    def test_invariants_after_repair(self, wide_world):
        dep, result = wide_world
        rng = random.Random(4)
        positions = perturb(dep.points, rng.sample(range(120), 4), rng)
        report = localized_repair(result, positions)
        repaired = report.result
        assert is_planar_embedding(repaired.ldel_icds)
        # Per-component spanning.
        from repro.graphs.paths import connected_components

        udg_comps = [c for c in connected_components(repaired.udg) if len(c) > 1]
        prime_comps = connected_components(repaired.ldel_icds_prime)
        for comp in udg_comps:
            assert any(comp <= pc for pc in prime_comps)

    def test_dirty_fraction_below_one_for_local_churn(self, wide_world):
        dep, result = wide_world
        rng = random.Random(5)
        positions = perturb(dep.points, [60], rng)
        report = localized_repair(result, positions)
        if report.changed_nodes:  # the move may not cross any boundary
            assert report.dirty_fraction < 0.6

    def test_wrong_position_count_rejected(self, wide_world):
        _dep, result = wide_world
        with pytest.raises(ValueError):
            localized_repair(result, [Point(0, 0)])

    def test_repeated_repairs_stay_valid(self, wide_world):
        dep, result = wide_world
        rng = random.Random(6)
        positions = list(dep.points)
        current = result
        for _ in range(5):
            positions = perturb(positions, rng.sample(range(120), 3), rng)
            report = localized_repair(current, positions)
            current = report.result
            assert is_planar_embedding(current.ldel_icds)

    def test_escalation_fallback_is_correct(self, wide_world):
        # Teleport half the network: locality cannot hold, but the
        # result must still be valid (escalated or not).
        dep, result = wide_world
        rng = random.Random(7)
        positions = perturb(
            dep.points, rng.sample(range(120), 60), rng, magnitude=150.0
        )
        report = localized_repair(result, positions)
        assert is_planar_embedding(report.result.ldel_icds)
