"""Tests for the Markdown report generator and its CLI command."""

import pytest

from repro.analysis.report import generate_report
from repro.__main__ import main


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self, deployment):
        # Class-scoped: the report builds every topology once.
        return generate_report(deployment, title="Test report")

    def test_has_all_sections(self, report):
        for heading in (
            "# Test report",
            "## Deployment",
            "## Construction",
            "## Topology quality",
            "## Power",
            "## Spanner verification",
            "## Routing spot checks",
        ):
            assert heading in report

    def test_topology_rows_present(self, report):
        for name in ("UDG", "RNG", "GG", "LDel(ICDS)", "LDel(ICDS')"):
            assert f"| {name} |" in report

    def test_claims_verified_inline(self, report):
        assert "planar: **True**" in report
        assert ": **True**" in report  # spanner verification line
        assert "delivered in" in report

    def test_no_figures_section_without_svg_dir(self, report):
        assert "## Figures" not in report

    def test_svg_export(self, deployment, tmp_path):
        report = generate_report(deployment, svg_dir=tmp_path)
        assert "## Figures" in report
        assert (tmp_path / "ldel_icds.svg").exists()


class TestReportCommand:
    def test_cli_writes_report(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        code = main(
            [
                "report",
                "--nodes", "25", "--side", "150", "--radius", "60",
                "--seed", "2",
                "--output", str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "## Topology quality" in text
        assert "report written" in capsys.readouterr().out
