"""Tests for the CDS family builder and the paper's structural claims."""


from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.cds import build_cds_family, induced_udg_subgraph
from repro.sim.messages import STATUS


class TestFamilyStructure:
    def test_cds_subgraph_of_icds(self, small_deployments):
        # Every elected CDS edge is a UDG link between backbone nodes.
        for dep in small_deployments:
            family = build_cds_family(dep.udg())
            assert family.cds.is_subgraph_of(family.icds)

    def test_primes_extend_with_dominatee_edges(self, small_deployments):
        for dep in small_deployments:
            family = build_cds_family(dep.udg())
            assert family.cds.is_subgraph_of(family.cds_prime)
            assert family.icds.is_subgraph_of(family.icds_prime)
            extra = family.cds_prime.edge_set() - family.cds.edge_set()
            for u, v in extra:
                assert (
                    u in family.dominators or v in family.dominators
                ), "prime edges connect dominatees to dominators"

    def test_icds_prime_subset_relation(self, small_deployments):
        for dep in small_deployments:
            family = build_cds_family(dep.udg())
            assert family.cds_prime.is_subgraph_of(family.icds_prime)

    def test_partition_of_roles(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            family = build_cds_family(udg)
            assert family.dominators | family.connectors | family.dominatees == set(
                udg.nodes()
            )
            assert not (family.dominators & family.connectors)
            assert not (family.backbone_nodes & family.dominatees)

    def test_primes_span_all_nodes(self, small_deployments):
        # CDS' and ICDS' connect every node (backbone + dominatee links).
        for dep in small_deployments:
            family = build_cds_family(dep.udg())
            assert is_connected_on_support(family.cds_prime)
            assert is_connected_on_support(family.icds_prime)

    def test_icds_edges_are_all_backbone_udg_links(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            family = build_cds_family(udg)
            members = family.backbone_nodes
            for u in members:
                for v in members:
                    if u < v and udg.has_edge(u, v):
                        assert family.icds.has_edge(u, v)


class TestDegreeBounds:
    def test_cds_degree_constant(self, small_deployments):
        """Paper Lemma 4: CDS node degree bounded by a constant."""
        for dep in small_deployments:
            family = build_cds_family(dep.udg())
            assert max(family.cds.degrees(), default=0) <= 30

    def test_icds_degree_constant(self, small_deployments):
        """Paper Lemma 8: ICDS node degree bounded by a constant."""
        for dep in small_deployments:
            family = build_cds_family(dep.udg())
            assert max(family.icds.degrees(), default=0) <= 47


class TestStatusAccounting:
    def test_one_status_message_per_node(self, small_deployments):
        dep = small_deployments[0]
        udg = dep.udg()
        family = build_cds_family(udg)
        assert family.stats.per_kind[STATUS] == udg.node_count

    def test_family_stats_cumulative(self, small_deployments):
        dep = small_deployments[0]
        udg = dep.udg()
        family = build_cds_family(udg)
        expected = (
            family.clustering.stats.total
            + family.connector_outcome.stats.total
            + udg.node_count
        )
        assert family.stats.total == expected


class TestInducedSubgraph:
    def test_induced_udg_subgraph(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(0.5, 0.5)]
        udg = UnitDiskGraph(pts, 1.0)
        g = induced_udg_subgraph(udg, frozenset({0, 1, 2}), "test")
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(0, 2)
        assert g.degree(3) == 0


class TestFigure5Counterexample:
    """The paper's Figure 5: the CDS can be non-planar.

    Two dominator pairs (u1, u4) and (v1, v4), each with a *unique*
    3-hop path between them; the middle links of the two paths cross,
    so both crossing links are forced into the CDS.  IDs are assigned
    so the lowest-ID MIS elects exactly the four chain endpoints.
    """

    # ids 0..7 = u1, u4, v1, v4, u2, u3, v2, v3.  The middle quad is
    # deliberately *not* cocircular (the paper assumes no four
    # cocircular nodes; an exactly-cocircular quad makes both crossing
    # diagonals Gabriel edges, a measure-zero degeneracy).
    POINTS = [
        Point(-0.8, 0.85),    # u1 (dominator)
        Point(1.6, -0.85),    # u4 (dominator)
        Point(-0.75, -0.85),  # v1 (dominator)
        Point(1.55, 0.85),    # v4 (dominator)
        Point(0.0, 0.25),     # u2
        Point(0.8, -0.25),    # u3
        Point(0.05, -0.25),   # v2
        Point(0.75, 0.25),    # v3
    ]
    U1, U4, V1, V4, U2, U3, V2, V3 = range(8)

    def test_geometry_sanity(self):
        udg = UnitDiskGraph(self.POINTS, 1.0)
        # Each chain is a path; the two middle links cross at (0.4, 0).
        for a, b in [
            (self.U1, self.U2), (self.U2, self.U3), (self.U3, self.U4),
            (self.V1, self.V2), (self.V2, self.V3), (self.V3, self.V4),
        ]:
            assert udg.has_edge(a, b)
        # The unique-3-hop-path condition: u1/u4 have degree 1.
        assert udg.neighbors(self.U1) == {self.U2}
        assert udg.neighbors(self.U4) == {self.U3}
        assert udg.neighbors(self.V1) == {self.V2}
        assert udg.neighbors(self.V4) == {self.V3}

    def test_crossing_links_forced_into_cds(self):
        udg = UnitDiskGraph(self.POINTS, 1.0)
        from repro.protocols.clustering import run_clustering

        clustering = run_clustering(udg)
        assert clustering.dominators == {self.U1, self.U4, self.V1, self.V4}
        family = build_cds_family(udg)
        assert family.cds.has_edge(self.U2, self.U3)
        assert family.cds.has_edge(self.V2, self.V3)
        assert not is_planar_embedding(family.cds)

    def test_ldel_planarizes_this_instance(self):
        # The fix the paper proposes: LDel over ICDS is planar even here.
        from repro.protocols.backbone import run_backbone_pipeline

        udg = UnitDiskGraph(self.POINTS, 1.0)
        pipeline = run_backbone_pipeline(udg)
        assert is_planar_embedding(pipeline.ldel_icds)


def is_connected_on_support(graph: Graph) -> bool:
    """Connectivity ignoring isolated nodes (nodes with no edges)."""
    support = [u for u in graph.nodes() if graph.degree(u) > 0]
    if len(support) <= 1:
        return True
    sub, _ = graph.subgraph(support)
    return is_connected(sub)
