"""Tests for Algorithm 1 — the connector election."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.paths import bfs_hops, is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import run_clustering
from repro.protocols.connectors import derive_local_knowledge, run_connectors
from repro.sim.messages import IAM_CONNECTOR, TRY_CONNECTOR


def backbone_graph(udg, clustering, outcome):
    g = Graph(udg.positions, outcome.cds_edges, name="CDS")
    return g


class TestTwoHopPair:
    def test_common_dominatee_becomes_connector(self):
        # dominators 0 and 2 share dominatee 1.
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        clustering = run_clustering(udg)
        assert clustering.dominators == {0, 2}
        outcome = run_connectors(udg, clustering)
        assert outcome.connectors == {1}
        assert outcome.cds_edges == {(0, 1), (1, 2)}

    def test_smallest_id_wins_among_hearing_candidates(self):
        # Dominators 0, 3; dominatees 1 and 2 both adjacent to both and
        # to each other -> only the smaller (1) claims.
        pts = [Point(0, 0), Point(0.9, 0.1), Point(0.9, -0.1), Point(1.8, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        clustering = run_clustering(udg)
        assert clustering.dominators == {0, 3}
        outcome = run_connectors(udg, clustering)
        assert outcome.connectors == {1}

    def test_two_winners_when_candidates_cannot_hear_each_other(self):
        # Candidates on opposite sides of the dominator axis, more than
        # one radius apart: the paper's "at most 2 connectors per pair".
        pts = [
            Point(0, 0),          # dominator 0
            Point(0.9, 0.53),     # candidate 1 (above)
            Point(0.9, -0.53),    # candidate 2 (below), |1-2| = 1.06 > R
            Point(1.8, 0),        # dominator 3
        ]
        udg = UnitDiskGraph(pts, 1.05)
        assert not udg.has_edge(1, 2)
        clustering = run_clustering(udg)
        assert clustering.dominators == {0, 3}
        outcome = run_connectors(udg, clustering)
        assert outcome.connectors == {1, 2}


class TestThreeHopPair:
    # On an ID-ordered line the lowest-ID MIS is {0, 2} (2-hop pairs
    # only), so a genuine 3-hop dominator pair needs permuted IDs:
    # node ids 0..3 placed at x = 0, 3, 1, 2.
    THREE_HOP_LINE = [Point(0, 0), Point(3, 0), Point(1, 0), Point(2, 0)]

    def test_mis_is_the_endpoints(self):
        udg = UnitDiskGraph(self.THREE_HOP_LINE, 1.0)
        clustering = run_clustering(udg)
        assert clustering.dominators == {0, 1}

    def test_path_completed_through_two_connectors(self):
        udg = UnitDiskGraph(self.THREE_HOP_LINE, 1.0)
        clustering = run_clustering(udg)
        outcome = run_connectors(udg, clustering)
        assert outcome.connectors == {2, 3}
        # Full dominator-to-dominator path present in the CDS edges.
        assert (0, 2) in outcome.cds_edges
        assert (2, 3) in outcome.cds_edges
        assert (1, 3) in outcome.cds_edges


class TestLocalKnowledge:
    def test_two_hop_dominators_derived(self):
        # ids at x = 0, 3, 1, 2: dominators {0, 1}, dominatees {2, 3}.
        pts = [Point(0, 0), Point(3, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        clustering = run_clustering(udg)
        knowledge = derive_local_knowledge(udg, clustering)
        # Node 2 (dominatee of 0) hears node 3 announce dominator 1.
        assert 1 in knowledge[2].two_hop_dominators
        assert knowledge[2].two_hop_dominators[1] == {3}
        # Adjacent dominators are not two-hop dominators.
        assert 0 not in knowledge[2].two_hop_dominators

    def test_roles(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        clustering = run_clustering(udg)
        knowledge = derive_local_knowledge(udg, clustering)
        assert knowledge[0].role == "dominator"
        assert knowledge[1].role == "dominatee"
        assert knowledge[1].my_dominators == {0, 2}


class TestCdsConnectivity:
    def test_backbone_connected_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            clustering = run_clustering(udg)
            outcome = run_connectors(udg, clustering)
            backbone_nodes = clustering.dominators | outcome.connectors
            cds = Graph(udg.positions, outcome.cds_edges)
            sub, remap = cds.subgraph(backbone_nodes)
            assert is_connected(sub), "CDS backbone must be connected"

    def test_every_dominator_pair_within_3_hops_connected(self, small_deployments):
        # The guarantee Algorithm 1 provides directly.
        for dep in small_deployments[:3]:
            udg = dep.udg()
            clustering = run_clustering(udg)
            outcome = run_connectors(udg, clustering)
            cds = Graph(udg.positions, outcome.cds_edges)
            doms = sorted(clustering.dominators)
            for u in doms:
                hops_udg = bfs_hops(udg, u)
                hops_cds = bfs_hops(cds, u)
                for v in doms:
                    if u < v and 0 < hops_udg[v] <= 3:
                        assert hops_cds[v] > 0, (
                            f"dominators {u},{v} ({hops_udg[v]} hops apart)"
                            " not connected in CDS"
                        )

    def test_connector_edges_are_udg_links(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            clustering = run_clustering(udg)
            outcome = run_connectors(udg, clustering)
            for u, v in outcome.cds_edges:
                assert udg.has_edge(u, v)


class TestMessageBounds:
    def test_constant_messages_per_node(self, small_deployments):
        # Lemma 3: constant per-node message count.  The constant is
        # generous (dominator pairs within 2 hops x 2 messages).
        for dep in small_deployments:
            udg = dep.udg()
            clustering = run_clustering(udg)
            outcome = run_connectors(udg, clustering)
            assert outcome.stats.max_per_node() <= 40

    def test_only_dominatees_send(self, small_deployments):
        dep = small_deployments[0]
        udg = dep.udg()
        clustering = run_clustering(udg)
        outcome = run_connectors(udg, clustering)
        for dom in clustering.dominators:
            assert outcome.stats.node_total(dom) == 0

    def test_claims_match_message_kinds(self, small_deployments):
        dep = small_deployments[0]
        udg = dep.udg()
        clustering = run_clustering(udg)
        outcome = run_connectors(udg, clustering)
        assert outcome.stats.per_kind.get(TRY_CONNECTOR, 0) >= outcome.stats.per_kind.get(
            IAM_CONNECTOR, 0
        )

    def test_rebroadcast_mode_charges_dominatee_messages(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        clustering = run_clustering(udg)
        quiet = run_connectors(udg, clustering)
        loud = run_connectors(udg, clustering, rebroadcast_dominatees=True)
        assert loud.stats.total > quiet.stats.total

    def test_unknown_election_rule_rejected(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        clustering = run_clustering(udg)
        with pytest.raises(ValueError):
            run_connectors(udg, clustering, election="coin-flip")

    def test_first_response_election_yields_superset(self, small_deployments):
        # first-response skips the ID wait: every candidate claims, so
        # connectivity holds with (weakly) more connectors.
        dep = small_deployments[0]
        udg = dep.udg()
        clustering = run_clustering(udg)
        small = run_connectors(udg, clustering, election="smallest-id")
        eager = run_connectors(udg, clustering, election="first-response")
        assert small.connectors <= eager.connectors
