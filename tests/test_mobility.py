"""Tests for random-waypoint mobility and backbone maintenance."""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point, dist
from repro.mobility.maintenance import BackboneMaintainer
from repro.mobility.waypoint import RandomWaypointModel


class TestRandomWaypoint:
    def make_model(self, n=10, side=100.0, seed=1, **kwargs):
        rng = random.Random(seed)
        initial = [
            Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)
        ]
        return RandomWaypointModel(initial, side, rng, **kwargs)

    def test_positions_stay_in_region(self):
        model = self.make_model()
        for _ in range(50):
            for p in model.step(1.0):
                assert 0.0 <= p.x <= 100.0
                assert 0.0 <= p.y <= 100.0

    def test_speed_bound_respected(self):
        model = self.make_model(speed_range=(2.0, 4.0), pause_range=(0.0, 0.0))
        before = model.positions()
        after = model.step(1.0)
        for p, q in zip(before, after):
            assert dist(p, q) <= 4.0 + 1e-9

    def test_zero_dt_is_identity(self):
        model = self.make_model()
        before = model.positions()
        assert model.step(0.0) == before

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            self.make_model().step(-1.0)

    def test_nodes_actually_move(self):
        model = self.make_model(pause_range=(0.0, 0.0))
        before = model.positions()
        after = model.step(5.0)
        moved = sum(1 for p, q in zip(before, after) if dist(p, q) > 1e-9)
        assert moved == len(before)

    def test_pause_halts_motion(self):
        # Pause long enough that every node is mid-pause after its
        # first trip (max trip time: diagonal/speed ~ 29 time units).
        model = self.make_model(pause_range=(1e6, 1e6), speed_range=(5.0, 5.0))
        model.step(200.0)
        before = model.positions()
        after = model.step(1.0)
        assert before == after

    def test_invalid_ranges_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            RandomWaypointModel([Point(0, 0)], 10.0, rng, speed_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointModel([Point(0, 0)], 10.0, rng, pause_range=(-1.0, 0.0))

    def test_clock_advances(self):
        model = self.make_model()
        model.step(2.5)
        assert model.time == pytest.approx(2.5)


class TestBackboneMaintainer:
    def test_no_rebuild_when_links_hold(self, deployment, backbone):
        maintainer = BackboneMaintainer(backbone)
        # Tiny jiggle: far below what breaks a link.
        rng = random.Random(2)
        positions = [
            Point(p.x + rng.uniform(-0.01, 0.01), p.y + rng.uniform(-0.01, 0.01))
            for p in deployment.points
        ]
        report = maintainer.update(positions)
        assert not report.rebuilt
        assert report.edge_retention == 1.0
        assert maintainer.rebuild_count == 0

    def test_rebuild_when_link_breaks(self, deployment, backbone):
        maintainer = BackboneMaintainer(backbone)
        # Drag one backbone endpoint far away.
        u, v = next(iter(backbone.ldel_icds.edges()))
        positions = list(deployment.points)
        positions[u] = Point(positions[u].x + 500.0, positions[u].y)
        report = maintainer.update(positions)
        assert report.rebuilt
        assert report.broken_links
        assert any(u in link for link in report.broken_links)
        assert maintainer.rebuild_count == 1

    def test_check_reports_exact_broken_links(self, deployment, backbone):
        maintainer = BackboneMaintainer(backbone)
        u, v = next(iter(backbone.ldel_icds.edges()))
        positions = list(deployment.points)
        positions[u] = Point(positions[u].x + 500.0, positions[u].y)
        broken = maintainer.check(positions)
        for a, b in broken:
            assert dist(positions[a], positions[b]) > backbone.udg.radius

    def test_wrong_position_count_rejected(self, backbone):
        maintainer = BackboneMaintainer(backbone)
        with pytest.raises(ValueError):
            maintainer.update([Point(0, 0)])

    def test_retention_between_zero_and_one(self, deployment, backbone):
        maintainer = BackboneMaintainer(backbone)
        rng = random.Random(3)
        positions = [
            Point(p.x + rng.uniform(-15, 15), p.y + rng.uniform(-15, 15))
            for p in deployment.points
        ]
        report = maintainer.update(positions)
        assert 0.0 <= report.edge_retention <= 1.0
        if report.rebuilt:
            assert report.result is maintainer.result
            assert report.result is not backbone

    def test_rebuild_when_new_link_crosses_structural_edge(self):
        # Node 0 dominates everyone; the prime backbone carries the
        # dominatee links (0,1), (0,2), (0,3).  Nodes 2 and 3 face each
        # other across the (0,0)-(8,0) segment, just out of range.
        points = [
            Point(0.0, 0.0),
            Point(8.0, 0.0),
            Point(4.0, 5.2),
            Point(4.0, -5.2),
        ]
        maintainer = BackboneMaintainer(build_backbone(points, 10.0))
        moved = list(points)
        moved[2] = Point(4.0, 4.8)  # 2-3 comes into range, crossing 0-1
        # No structural link broke — the old policy would do nothing —
        # but the new 2-3 link physically crosses a structural link.
        assert maintainer.check(moved) == ()
        assert (2, 3) in maintainer.new_links(moved)
        assert (2, 3) in maintainer.invalidating_links(moved)
        report = maintainer.update(moved)
        assert report.rebuilt
        assert report.broken_links == ()
        assert (2, 3) in report.invalidating_links
        assert maintainer.rebuild_count == 1

    def test_rebuild_when_backbone_nodes_gain_a_link(self):
        # Two isolated dominators drift into range: the induced
        # backbone subgraph gains an edge, so the cached PLDel/ICDS
        # membership is stale even though nothing broke.
        points = [Point(0.0, 0.0), Point(10.5, 0.0)]
        maintainer = BackboneMaintainer(build_backbone(points, 10.0))
        moved = [points[0], Point(9.5, 0.0)]
        assert maintainer.check(moved) == ()
        assert maintainer.invalidating_links(moved) == ((0, 1),)
        report = maintainer.update(moved)
        assert report.rebuilt
        assert report.invalidating_links == ((0, 1),)

    def test_benign_gain_still_ignored_without_watch_gains(self):
        # A fresh dominatee-dominatee link with no crossing does not
        # invalidate the maintained structure: the break-only policy
        # stands unless watch_gains opts into healing.
        points = [Point(0.0, 0.0), Point(6.0, 5.2), Point(6.0, -5.2)]
        maintainer = BackboneMaintainer(build_backbone(points, 10.0))
        moved = [points[0], Point(6.0, 4.7), points[2]]
        assert (1, 2) in maintainer.new_links(moved)
        assert maintainer.invalidating_links(moved) == ()
        report = maintainer.update(moved)
        assert not report.rebuilt
        assert report.invalidating_links == ()
        report = maintainer.update(moved, watch_gains=True)
        assert report.rebuilt

    def test_waypoint_driven_session(self, deployment, backbone):
        # Integration: run mobility + maintenance together; the
        # maintainer's result must always be structurally valid.
        from repro.graphs.planarity import is_planar_embedding

        rng = random.Random(11)
        model = RandomWaypointModel(
            list(deployment.points), deployment.side, rng,
            speed_range=(1.0, 3.0),
        )
        maintainer = BackboneMaintainer(backbone)
        for _ in range(5):
            report = maintainer.update(model.step(1.0))
            assert is_planar_embedding(report.result.ldel_icds)
        assert maintainer.update_count == 5
