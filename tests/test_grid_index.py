"""Edge-case tests for the uniform bucket grid in repro.graphs.udg."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.primitives import Point, dist
from repro.graphs.udg import GridIndex, UnitDiskGraph

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestConstruction:
    def test_nonpositive_cell_size_rejected(self):
        with pytest.raises(ValueError):
            GridIndex([Point(0, 0)], 0.0)
        with pytest.raises(ValueError):
            GridIndex([Point(0, 0)], -1.0)

    def test_empty_point_set(self):
        index = GridIndex([], 1.0)
        assert index.within(Point(0, 0), 10.0) == []
        assert list(index.candidates_near(Point(3, -7), 2.0)) == []


class TestNegativeCoordinates:
    def test_within_straddling_origin(self):
        # floor-based cell hashing must not collapse cells around zero
        # (int() truncation would map -0.5 and 0.5 to the same cell).
        pts = [Point(-1.5, -1.5), Point(-0.5, 0.5), Point(0.5, -0.5), Point(1.5, 1.5)]
        index = GridIndex(pts, 1.0)
        found = index.within(Point(0.0, 0.0), 1.0)
        assert sorted(found) == [1, 2]

    def test_all_negative_quadrant(self):
        pts = [Point(-10.0, -10.0), Point(-10.5, -10.5), Point(-20.0, -20.0)]
        index = GridIndex(pts, 1.0)
        assert sorted(index.within(Point(-10.2, -10.2), 1.0)) == [0, 1]


class TestLargeQueryRadius:
    def test_radius_many_times_cell_size(self):
        pts = [Point(float(i), 0.0) for i in range(10)]
        index = GridIndex(pts, cell_size=0.5)
        # radius 20x the cell size must reach every point.
        assert sorted(index.within(Point(0.0, 0.0), 10.0)) == list(range(10))

    def test_boundary_inclusive(self):
        index = GridIndex([Point(3.0, 0.0)], 1.0)
        assert index.within(Point(0.0, 0.0), 3.0) == [0]
        assert index.within(Point(0.0, 0.0), 2.999) == []


class TestDuplicatePoints:
    def test_duplicates_each_reported(self):
        pts = [Point(1.0, 1.0)] * 3 + [Point(5.0, 5.0)]
        index = GridIndex(pts, 1.0)
        assert sorted(index.within(Point(1.0, 1.0), 0.5)) == [0, 1, 2]

    def test_udg_with_duplicates_connects_them(self):
        udg = UnitDiskGraph([Point(0, 0), Point(0, 0), Point(0.5, 0)], 1.0)
        assert udg.has_edge(0, 1)
        assert udg.has_edge(0, 2) and udg.has_edge(1, 2)


class TestAgainstBruteForce:
    @given(st.lists(points, max_size=30), points,
           st.floats(min_value=0.1, max_value=40.0),
           st.floats(min_value=0.05, max_value=10.0))
    def test_within_matches_linear_scan(self, pts, query, radius, cell_size):
        index = GridIndex(pts, cell_size)
        expected = sorted(
            i for i, p in enumerate(pts) if dist(p, query) <= radius
        )
        assert sorted(index.within(query, radius)) == expected

    @given(st.lists(points, max_size=25), points,
           st.floats(min_value=0.1, max_value=20.0))
    def test_candidates_are_a_superset(self, pts, query, radius):
        index = GridIndex(pts, 1.0)
        candidates = set(index.candidates_near(query, radius))
        for i, p in enumerate(pts):
            if dist(p, query) <= radius:
                assert i in candidates
