"""Documentation consistency: what the docs point at must exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (ROOT / "DESIGN.md").read_text()

    def test_referenced_bench_files_exist(self, design):
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_referenced_modules_exist(self, design):
        for match in re.finditer(r"`repro\.([a-z_.]+)`", design):
            dotted = match.group(1).rstrip(".")
            path = ROOT / "src" / "repro" / Path(*dotted.split("."))
            assert (
                path.with_suffix(".py").exists() or (path / "__init__.py").exists()
            ), f"repro.{dotted}"

    def test_paper_confirmation_present(self, design):
        assert "Paper-text check" in design
        assert "matches the stated" in design


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_referenced_examples_exist(self, readme):
        for match in re.finditer(r"`examples/(\w+\.py)`", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(0)

    def test_doc_files_exist(self, readme):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in readme
            assert (ROOT / name).exists()

    def test_every_example_is_documented(self, readme):
        for example in (ROOT / "examples").glob("*.py"):
            assert f"`examples/{example.name}`" in readme, example.name


class TestDocsDir:
    def test_docs_referenced_from_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"`(\w+\.md)`", readme):
            name = match.group(1)
            assert (
                (ROOT / name).exists() or (ROOT / "docs" / name).exists()
            ), name

    def test_experiments_md_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for heading in (
            "Table I",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12",
        ):
            assert heading in text, heading
