"""Smoke tests: every example script runs end to end.

Each example is executed in-process at reduced scale via runpy with
patched argv; the assertions check the banner lines that prove the
scenario actually ran (delivery counts, planarity, savings).
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(capsys, monkeypatch, script: str, *args: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *args])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_reports_topologies(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "quickstart.py",
            "--nodes", "30", "--radius", "60", "--seed", "2",
        )
        assert "backbone:" in out
        assert "LDel(ICDS)" in out
        assert "RNG" in out

    def test_edge_export(self, capsys, monkeypatch, tmp_path):
        run_example(
            capsys, monkeypatch, "quickstart.py",
            "--nodes", "25", "--seed", "3", "--export-dir", str(tmp_path),
        )
        exported = list(tmp_path.glob("*.edges"))
        assert len(exported) == 10
        lines = (tmp_path / "UDG.edges").read_text().splitlines()
        assert all(len(line.split()) == 4 for line in lines)


class TestSensorSinkRouting:
    def test_full_delivery(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "sensor_sink_routing.py",
            "--nodes", "40", "--seed", "4",
        )
        assert "delivered: 39/39" in out
        assert "x saving" in out


class TestGpsrDemo:
    def test_gpsr_delivers_everything(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "gpsr_demo.py",
            "--nodes", "50", "--seed", "12",
        )
        assert "planar: True" in out
        assert "GPSR delivered everything" in out


class TestMobilityMaintenance:
    def test_session_runs(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "mobility_maintenance.py",
            "--nodes", "30", "--steps", "4", "--seed", "6",
        )
        assert "rebuilds:" in out
        assert "routable" in out


class TestNetworkLifetime:
    def test_capstone_runs_all_phases(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "network_lifetime.py",
            "--nodes", "40", "--flows", "10", "--mobility-steps", "3",
            "--seed", "42",
        )
        assert "phase 1" in out and "phase 4" in out
        assert "TOTAL" in out
        assert "packets delivered" in out


class TestNodeFailures:
    def test_failure_sweep_runs(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "node_failures.py",
            "--nodes", "40", "--deaths", "3", "--seed", "33",
        )
        assert "single points of failure" in out
        assert "after rebuild" in out


class TestBroadcastComparison:
    def test_reports_savings(self, capsys, monkeypatch):
        out = run_example(
            capsys, monkeypatch, "broadcast_comparison.py",
            "--nodes", "40", "--seed", "5",
        )
        assert "blind flooding" in out
        assert "backbone relay" in out
        assert "fewer tx" in out
