"""Equivalence tests for the hot-path optimizations.

Every optimization in the construction pipeline — the per-UDG
neighborhood/circumcircle cache, the parallel candidate fan-out, the
circumcircle prefilter in the triangulator, the bulk grid pair
enumeration — promises *bit-identical* output to the straightforward
path.  These tests hold it to that on the inputs where shortcuts are
most likely to diverge: random deployments, exact grids (cocircular
quadruples everywhere), and collinear lines.
"""

import math
import random

import pytest

from repro.core import compat
from repro.geometry.primitives import Point, dist_sq
from repro.geometry.triangulation import delaunay
from repro.graphs.udg import GridIndex, UnitDiskGraph
from repro.topology.construction_cache import ConstructionCache
from repro.topology.ldel import (
    candidate_triangles,
    local_delaunay_graph,
    planar_local_delaunay_graph,
)


def _random_udg(n=60, side=60.0, radius=18.0, seed=7):
    rng = random.Random(seed)
    pts = [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]
    return UnitDiskGraph(pts, radius)


def _grid_udg(rows=7, cols=7, spacing=1.0, radius=1.6):
    pts = [Point(c * spacing, r * spacing) for r in range(rows) for c in range(cols)]
    return UnitDiskGraph(pts, radius)


def _collinear_udg(n=12, radius=2.5):
    pts = [Point(float(i), 0.0) for i in range(n)]
    return UnitDiskGraph(pts, radius)


DEPLOYMENTS = {
    "random": _random_udg,
    "grid": _grid_udg,
    "collinear": _collinear_udg,
}


@pytest.fixture(params=sorted(DEPLOYMENTS))
def udg(request):
    return DEPLOYMENTS[request.param]()


class TestCachedEqualsUncached:
    def test_ldel1_identical(self, udg):
        plain = local_delaunay_graph(udg, k=1)
        cached = local_delaunay_graph(udg, k=1, cache=ConstructionCache(udg))
        assert plain.graph.edge_set() == cached.graph.edge_set()
        assert plain.triangles == cached.triangles
        assert plain.gabriel_edges == cached.gabriel_edges

    def test_pldel_identical(self, udg):
        plain = planar_local_delaunay_graph(udg)
        cached = planar_local_delaunay_graph(udg, cache=ConstructionCache(udg))
        assert plain.graph.edge_set() == cached.graph.edge_set()
        assert plain.triangles == cached.triangles

    def test_cache_actually_hit(self, udg):
        # The k-hop cache is the *reference* path's memoization; the SoA
        # kernels never consult it, so pin this test to the scalar path.
        cache = ConstructionCache(udg)
        with compat.numpy_disabled():
            planar_local_delaunay_graph(udg, cache=cache)
        snap = cache.snapshot()
        assert snap["khop_hits"] > 0
        # Every neighborhood and circumcircle computed at most once.
        assert snap["khop_misses"] <= udg.node_count

    def test_foreign_cache_rejected(self, udg):
        other = _random_udg(seed=99)
        cache = ConstructionCache(other)
        # for_udg must not serve another graph's neighborhoods.
        assert ConstructionCache.for_udg(udg, cache) is not cache
        result = local_delaunay_graph(udg, k=1, cache=cache)
        plain = local_delaunay_graph(udg, k=1)
        assert result.graph.edge_set() == plain.graph.edge_set()


class TestSerialEqualsParallel:
    def test_candidates_identical(self, udg):
        serial = candidate_triangles(udg, parallel=False)
        parallel = candidate_triangles(
            udg, parallel=True, max_workers=2, executor_mode="thread"
        )
        assert serial == parallel

    def test_pldel_identical_parallel(self, udg):
        serial = planar_local_delaunay_graph(udg, parallel=False)
        parallel = planar_local_delaunay_graph(udg, parallel=True, max_workers=2)
        assert serial.graph.edge_set() == parallel.graph.edge_set()
        assert serial.triangles == parallel.triangles

    def test_single_worker_degrades_to_serial(self, udg):
        # workers < 2 must fall back rather than spin up a useless pool.
        serial = candidate_triangles(udg, parallel=False)
        forced = candidate_triangles(udg, parallel=True, max_workers=1)
        assert serial == forced


class TestDelaunayPrefilter:
    """The circumcircle prefilter may only defer to the exact test."""

    def test_cocircular_grid(self):
        pts = [Point(float(c), float(r)) for r in range(6) for c in range(6)]
        tri = delaunay(pts)
        # Every unit grid square is an exactly-cocircular quadruple;
        # the triangulation must still cover the square with two
        # triangles each and stay consistent.
        assert len(tri.triangles) == 2 * 5 * 5
        for a, b, c in tri.triangles:
            assert a < b < c

    def test_matches_raw_tuples(self):
        rng = random.Random(3)
        coords = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(40)]
        as_points = delaunay([Point(x, y) for x, y in coords])
        as_tuples = delaunay(coords)
        assert as_points.triangles == as_tuples.triangles
        assert as_points.edges == as_tuples.edges

    def test_collinear_input(self):
        pts = [Point(float(i), float(i)) for i in range(8)]
        tri = delaunay(pts)
        assert tri.triangles == []
        assert len(tri.edges) == 7


class TestTrianglesOf:
    def test_matches_naive_scan(self):
        rng = random.Random(11)
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(50)]
        tri = delaunay(pts)
        for v in range(len(pts)):
            naive = [t for t in tri.triangles if v in t]
            assert sorted(tri.triangles_of(v)) == sorted(naive)

    def test_returns_copy(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8)]
        tri = delaunay(pts)
        tri.triangles_of(0).append((9, 9, 9))
        assert (9, 9, 9) not in tri.triangles_of(0)


class TestPairsWithin:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        pts = [Point(rng.uniform(0, 30), rng.uniform(0, 30)) for _ in range(80)]
        radius = 4.0
        index = GridIndex(pts, radius)
        got = sorted(index.pairs_within(radius))
        expected = sorted(
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if dist_sq(pts[i], pts[j]) <= radius * radius
        )
        assert got == expected
        assert len(got) == len(set(got))  # no duplicates

    def test_dense_radius_flat_scan(self):
        # Radius spanning more cells than points: exercises the flat
        # O(n^2)/2 cutover.
        rng = random.Random(5)
        pts = [Point(rng.uniform(0, 4), rng.uniform(0, 4)) for _ in range(10)]
        index = GridIndex(pts, 0.1)
        got = sorted(index.pairs_within(3.0))
        expected = sorted(
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if dist_sq(pts[i], pts[j]) <= 9.0
        )
        assert got == expected

    def test_matches_per_point_within(self):
        rng = random.Random(9)
        pts = [Point(rng.uniform(0, 25), rng.uniform(0, 25)) for _ in range(60)]
        radius = 5.0
        index = GridIndex(pts, radius)
        bulk = set(index.pairs_within(radius))
        per_point = set()
        for i, p in enumerate(pts):
            for j in index.within(p, radius):
                if i < j:
                    per_point.add((i, j))
        assert bulk == per_point

    def test_udg_build_uses_bulk_path(self):
        # The UDG built through pairs_within must equal a brute-force
        # edge set (radius inclusive).
        udg = _random_udg(n=70, seed=13)
        expected = {
            (i, j)
            for i in range(udg.node_count)
            for j in range(i + 1, udg.node_count)
            if math.dist(udg.positions[i], udg.positions[j]) <= udg.radius
        }
        assert set(udg.edges()) == expected
