"""The invariant matrix: engine, renderings, CLI, and service surface."""

import json

import pytest

from repro.validation.engine import PIPELINES, run_validation, validate_entry
from repro.validation.invariants import INDEX, INVARIANTS, Check, Invariant
from repro.validation.matrix import SCHEMA, CellResult, ValidationMatrix
from repro.workloads.corpus import CORPUS, CorpusEntry

#: A gray-zone entry small enough to validate in-test; not in CORPUS,
#: so it exercises validate_entry's entry-object interface directly.
TINY_QUASI = CorpusEntry(
    name="tiny-quasi",
    n=16,
    side=150.0,
    radius=60.0,
    generator="uniform",
    base_seed=777,
    description="small quasi instance for skip-semantics tests",
    model="quasi",
    epsilon=0.7,
    keep_probability=0.5,
)


class TestValidateEntry:
    @pytest.fixture(scope="class")
    def sparse_cells(self):
        return validate_entry(CORPUS["paper-sparse"])

    def test_all_pass_on_paper_sparse(self, sparse_cells):
        assert sparse_cells
        assert all(c.status == "pass" for c in sparse_cells if c.status != "skip")
        assert not any(c.status in ("fail", "error") for c in sparse_cells)

    def test_every_pipeline_covered(self, sparse_cells):
        assert {c.pipeline for c in sparse_cells} == set(PIPELINES)

    def test_quasi_only_checks_skip_on_udg(self, sparse_cells):
        by_key = {(c.pipeline, c.invariant): c for c in sparse_cells}
        assert by_key[("udg", "udg-edge-rule")].status == "pass"
        assert by_key[("udg", "quasi-link-bounds")].status == "skip"

    def test_pipeline_filter(self):
        cells = validate_entry(CORPUS["paper-sparse"], pipelines=["gg"])
        assert {c.pipeline for c in cells} == {"gg"}

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(KeyError):
            validate_entry(CORPUS["paper-sparse"], pipelines=["dijkstra"])

    def test_unknown_invariant_rejected(self):
        with pytest.raises(KeyError):
            validate_entry(CORPUS["paper-sparse"], invariants=["no-such-claim"])

    def test_quasi_skips_disk_model_claims(self):
        cells = validate_entry(
            TINY_QUASI,
            pipelines=["udg", "gg"],
            invariants=["udg-edge-rule", "quasi-link-bounds", "power-stretch"],
        )
        by_key = {(c.pipeline, c.invariant): c for c in cells}
        # Disk-rule and GG-power-stretch proofs assume the disk model.
        assert by_key[("udg", "udg-edge-rule")].status == "skip"
        assert by_key[("gg", "power-stretch")].status == "skip"
        # The quasi zone rules are the claims that DO bind here.
        assert by_key[("udg", "quasi-link-bounds")].status == "pass"

    def test_fail_and_error_statuses(self, monkeypatch):
        def failing(ctx):
            return Check(passed=False, value=9.0, bound=1.0, detail="injected")

        def exploding(ctx):
            raise RuntimeError("boom")

        fake = (
            Invariant(
                name="always-fails", description="", pipelines=("udg",), metric=failing
            ),
            Invariant(
                name="always-errors", description="", pipelines=("udg",), metric=exploding
            ),
        )
        monkeypatch.setattr("repro.validation.engine.INVARIANTS", fake)
        monkeypatch.setattr(
            "repro.validation.engine.INDEX", {inv.name: inv for inv in fake}
        )
        cells = validate_entry(CORPUS["paper-sparse"], pipelines=["udg"])
        by_name = {c.invariant: c for c in cells}
        assert by_name["always-fails"].status == "fail"
        assert by_name["always-fails"].value == 9.0
        assert by_name["always-errors"].status == "error"
        assert "boom" in by_name["always-errors"].detail


class TestRunValidation:
    def test_smoke_slice(self):
        matrix = run_validation(
            corpus=["paper-sparse"], pipelines=["udg", "gg"]
        )
        assert matrix.ok
        assert matrix.meta["entries"] == ["paper-sparse/0"]
        assert matrix.meta["pipelines"] == ["udg", "gg"]
        assert matrix.summary["fail"] == 0 and matrix.summary["error"] == 0

    def test_unknown_corpus_filter_raises(self):
        with pytest.raises(KeyError):
            run_validation(corpus=["paper-table9"])

    def test_invariant_filter_restricts_columns(self):
        matrix = run_validation(
            corpus=["paper-sparse"],
            pipelines=["ldel"],
            invariants=["planarity", "connectivity"],
        )
        assert {c.invariant for c in matrix.cells} == {"planarity", "connectivity"}

    def test_worker_crash_becomes_error_cells(self, monkeypatch):
        def dying(task):
            raise RuntimeError("worker died")

        monkeypatch.setattr("repro.validation.engine._entry_worker", dying)
        matrix = run_validation(corpus=["paper-sparse"], pipelines=["udg"])
        assert not matrix.ok
        assert matrix.cells
        assert all(c.status == "error" for c in matrix.cells)


class TestCatalog:
    def test_every_invariant_names_known_pipelines(self):
        for inv in INVARIANTS:
            assert set(inv.pipelines) <= set(PIPELINES)
            assert set(inv.models) <= {"udg", "quasi"}

    def test_index_is_complete(self):
        assert set(INDEX) == {inv.name for inv in INVARIANTS}

    def test_listing_is_json_ready(self):
        from repro.validation.invariants import invariant_listing

        listing = invariant_listing()
        assert len(listing) == len(INVARIANTS)
        json.dumps(listing)  # no unserializable members


def _handmade_matrix() -> ValidationMatrix:
    cells = [
        CellResult("e1", 0, "gg", "planarity", "pass", seconds=0.01),
        CellResult("e1", 0, "gg", "power-stretch", "fail", value=1.7, bound=1.0,
                   detail="gray zone"),
        CellResult("e2", 1, "ldel", "soa-identity", "error", detail="exploded"),
        CellResult("e2", 1, "ldel", "planarity", "skip"),
    ]
    meta = {"pipelines": ["gg", "ldel"],
            "invariants": ["planarity", "power-stretch", "soa-identity"],
            "executor": "serial", "elapsed_s": 0.5}
    return ValidationMatrix(cells=cells, meta=meta)


class TestMatrix:
    def test_summary_and_ok(self):
        matrix = _handmade_matrix()
        assert matrix.summary == {"pass": 1, "fail": 1, "skip": 1, "error": 1}
        assert not matrix.ok
        assert {c.invariant for c in matrix.problems()} == {
            "power-stretch", "soa-identity"
        }

    def test_json_document(self):
        doc = _handmade_matrix().to_json_dict()
        assert doc["schema"] == SCHEMA
        assert doc["ok"] is False
        assert len(doc["cells"]) == 4
        json.dumps(doc)

    def test_cell_round_trip(self):
        cell = CellResult("e", 2, "gg", "planarity", "fail", value=1.0, bound=0.5,
                          detail="d", seconds=0.25)
        back = CellResult.from_dict(cell.to_dict())
        assert back == cell
        assert back.instance == "e/2"

    def test_markdown_rendering(self):
        text = _handmade_matrix().to_markdown()
        assert "## Validation matrix" in text
        assert "### `gg`" in text and "### `ldel`" in text
        assert "`e1/0`" in text
        assert "### Failures" in text
        assert "power-stretch" in text and "gray zone" in text

    def test_text_rendering(self):
        text = _handmade_matrix().to_text()
        assert "1 pass, 1 fail, 1 error, 1 skip" in text
        assert "FAIL" in text and "ERROR" in text
        # Passing cells stay silent in the compact rendering.
        assert "e1/0 gg planarity" not in text

    def test_all_clear_text(self):
        matrix = ValidationMatrix(
            cells=[CellResult("e", 0, "gg", "planarity", "pass")]
        )
        assert "all invariants hold" in matrix.to_text()


class TestCli:
    def test_validate_exit_zero_and_output(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "matrix.json"
        code = main([
            "validate", "--corpus", "paper-sparse", "--pipeline", "gg",
            "--output", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == SCHEMA and doc["ok"]
        assert "all invariants hold" in capsys.readouterr().out

    def test_validate_json_format(self, capsys):
        from repro.__main__ import main

        code = main([
            "validate", "--corpus", "paper-sparse", "--pipeline", "udg",
            "--format", "json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SCHEMA

    def test_unknown_filter_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["validate", "--corpus", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_step_summary_appended(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        code = main([
            "validate", "--corpus", "paper-sparse", "--pipeline", "gg",
            "--step-summary",
        ])
        assert code == 0
        assert "## Validation matrix" in summary.read_text()


class TestService:
    @pytest.fixture(scope="class")
    def service(self):
        from repro.service.server import SpannerService

        return SpannerService(executor_mode="serial", cache_size=8)

    def test_invariants_summary(self, service):
        body = service.invariants_summary()
        assert {inv["name"] for inv in body["invariants"]} == set(INDEX)
        assert body["pipelines"] == list(PIPELINES)
        assert any(e["name"] == "paper-sparse" for e in body["corpus"])
        assert body["last_validation"] is None

    def test_validate_endpoint(self, service):
        body = service.validate(
            {"corpus": ["paper-sparse"], "pipelines": ["udg"]}
        )
        assert body["schema"] == SCHEMA and body["ok"]
        last = service.invariants_summary()["last_validation"]
        assert last is not None and last["ok"]

    def test_validate_bad_filter_is_client_error(self, service):
        from repro.service.server import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            service.validate({"corpus": ["paper-table9"]})
        assert excinfo.value.status == 400

    def test_validate_rejects_non_list_filters(self, service):
        from repro.service.server import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            service.validate({"corpus": "paper-sparse"})
        assert excinfo.value.status == 400
