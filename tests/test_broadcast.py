"""Tests for network-wide broadcasting strategies."""


from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.routing.broadcast import (
    backbone_broadcast,
    flood,
    relay_flood,
    rng_broadcast,
    rng_relay_set,
    tree_broadcast,
)
from repro.topology.mst import euclidean_mst


def line_udg(n):
    return UnitDiskGraph([Point(float(i), 0.0) for i in range(n)], 1.0)


class TestFlood:
    def test_full_coverage_on_connected_graph(self, deployment):
        udg = deployment.udg()
        result = flood(udg, 0)
        assert result.coverage == udg.node_count

    def test_every_node_transmits_once(self, deployment):
        udg = deployment.udg()
        result = flood(udg, 0)
        assert result.transmissions == udg.node_count

    def test_rounds_equal_eccentricity_plus_one(self):
        result = flood(line_udg(5), 0)
        assert result.rounds == 5  # each hop is one round

    def test_disconnected_component_unreached(self):
        pts = [Point(0, 0), Point(1, 0), Point(10, 0)]
        udg = UnitDiskGraph(pts, 1.0)
        result = flood(udg, 0)
        assert result.reached == {0, 1}


class TestRelayFlood:
    def test_relay_set_limits_transmitters(self):
        udg = line_udg(5)
        result = relay_flood(udg, 0, relays=[0, 1, 2, 3])
        # Node 4 hears node 3 but never forwards.
        assert result.coverage == 5
        assert 4 not in result.transmitters

    def test_source_always_transmits(self):
        udg = line_udg(3)
        result = relay_flood(udg, 0, relays=[])
        assert result.transmitters == {0}
        assert result.reached == {0, 1}

    def test_broken_relay_set_loses_coverage(self):
        udg = line_udg(5)
        result = relay_flood(udg, 0, relays=[0, 1])  # gap at 2
        assert result.coverage == 3  # 0,1,2 (2 hears 1 but won't relay)


class TestBackboneBroadcast:
    def test_full_coverage_via_cds(self, deployment, backbone):
        udg = deployment.udg()
        for source in [0, 5, udg.node_count - 1]:
            result = backbone_broadcast(udg, source, backbone.backbone_nodes)
            assert result.coverage == udg.node_count

    def test_cheaper_than_flooding(self, deployment, backbone):
        udg = deployment.udg()
        blind = flood(udg, 0)
        smart = backbone_broadcast(udg, 0, backbone.backbone_nodes)
        assert smart.transmissions < blind.transmissions
        assert smart.transmissions <= len(backbone.backbone_nodes) + 1

    def test_transmitters_are_backbone_or_source(self, deployment, backbone):
        udg = deployment.udg()
        source = next(iter(backbone.dominatees))
        result = backbone_broadcast(udg, source, backbone.backbone_nodes)
        assert result.transmitters <= backbone.backbone_nodes | {source}


class TestRngBroadcast:
    def test_full_coverage(self, deployment):
        udg = deployment.udg()
        result = rng_broadcast(udg, 0)
        assert result.coverage == udg.node_count

    def test_rng_leaves_do_not_relay(self, deployment):
        udg = deployment.udg()
        relays = rng_relay_set(udg)
        result = rng_broadcast(udg, 5)
        assert result.transmitters <= relays | {5}

    def test_cheaper_than_flooding(self, deployment):
        udg = deployment.udg()
        assert (
            rng_broadcast(udg, 0).transmissions
            <= flood(udg, 0).transmissions
        )

    def test_relay_set_on_line(self):
        udg = line_udg(5)
        # The RNG of a line is the line; interior nodes are internal.
        assert rng_relay_set(udg) == {1, 2, 3}


class TestTreeBroadcast:
    def test_full_coverage_on_mst(self, deployment):
        udg = deployment.udg()
        mst = euclidean_mst(udg)
        result = tree_broadcast(udg, 0, mst)
        assert result.coverage == udg.node_count

    def test_leaves_do_not_transmit(self, deployment):
        udg = deployment.udg()
        mst = euclidean_mst(udg)
        result = tree_broadcast(udg, 0, mst)
        leaves = {u for u in mst.nodes() if mst.degree(u) == 1 and u != 0}
        assert not (result.transmitters & leaves)

    def test_structured_strategies_beat_flooding(self, deployment, backbone):
        # Both structure-based schemes beat blind flooding.  Note the
        # backbone typically beats the MST too: the MST is deep and
        # skinny, so most of its nodes are internal (must transmit),
        # while the CDS was built to be a small relay set — the
        # quantitative version of the paper's case for backbones.
        udg = deployment.udg()
        mst = euclidean_mst(udg)
        tree = tree_broadcast(udg, 0, mst)
        relay = backbone_broadcast(udg, 0, backbone.backbone_nodes)
        blind = flood(udg, 0)
        assert tree.transmissions < blind.transmissions
        assert relay.transmissions < blind.transmissions
        assert relay.transmissions <= len(backbone.backbone_nodes) + 1

    def test_tree_broadcast_latency_cost(self, deployment, backbone):
        # The flip side: the tree takes far more rounds than the
        # backbone flood (depth vs near-BFS).
        udg = deployment.udg()
        mst = euclidean_mst(udg)
        tree = tree_broadcast(udg, 0, mst)
        relay = backbone_broadcast(udg, 0, backbone.backbone_nodes)
        assert tree.rounds >= relay.rounds
