"""Tests for the corpus CLI command and --corpus deployment source."""

import pytest

from repro.__main__ import main


class TestCorpusCommand:
    def test_lists_all_entries(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-table1", "sensor-clusters", "road-corridor"):
            assert name in out

    def test_measure_from_corpus(self, capsys):
        assert main(["measure", "--corpus", "paper-sparse"]) == 0
        out = capsys.readouterr().out
        assert "UDG" in out

    def test_corpus_with_index(self, capsys):
        assert main(["build", "--corpus", "paper-sparse/1"]) == 0
        out = capsys.readouterr().out
        assert "planar: True" in out

    def test_unknown_corpus_name(self, capsys):
        with pytest.raises(KeyError):
            main(["build", "--corpus", "bogus"])

    def test_corpus_build_deterministic(self, capsys):
        main(["build", "--corpus", "paper-sparse"])
        first = capsys.readouterr().out
        main(["build", "--corpus", "paper-sparse"])
        second = capsys.readouterr().out
        assert first == second
