"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.ascii_chart import default_series, render_chart
from repro.experiments.runner import SeriesPoint


def make_points():
    return [
        SeriesPoint(x=10, values={"a avg": 1.0, "b max": 5.0}),
        SeriesPoint(x=20, values={"a avg": 2.0, "b max": 4.0}),
        SeriesPoint(x=30, values={"a avg": 3.0, "b max": 6.0}),
    ]


class TestRenderChart:
    def test_contains_axis_and_legend(self):
        text = render_chart(make_points(), ["a avg", "b max"], x_label="n")
        assert "o = a avg" in text
        assert "x = b max" in text
        assert "+" + "-" * 64 in text
        assert "10" in text and "30" in text

    def test_marks_plotted(self):
        text = render_chart(make_points(), ["a avg"])
        assert text.count("o") >= 3 + 1  # 3 data points + legend

    def test_extremes_on_borders(self):
        lines = render_chart(make_points(), ["b max"], height=8).splitlines()
        # Max value (6.0) lands on the top row (the sole series plots
        # with the first glyph, "o").
        assert "o" in lines[0]
        assert lines[0].lstrip().startswith("6.00")

    def test_empty_inputs(self):
        assert render_chart([], ["a"]) == "(no data)"
        assert render_chart(make_points(), []) == "(no data)"

    def test_unknown_series_rejected(self):
        with pytest.raises(KeyError):
            render_chart(make_points(), ["nope"])

    def test_flat_series_renders(self):
        points = [
            SeriesPoint(x=1, values={"c": 2.0}),
            SeriesPoint(x=2, values={"c": 2.0}),
        ]
        text = render_chart(points, ["c"])
        assert "o" in text

    def test_single_point(self):
        points = [SeriesPoint(x=5, values={"c": 1.0})]
        text = render_chart(points, ["c"])
        assert "o" in text


class TestDefaultSeries:
    def test_prefers_averages(self):
        series = default_series(make_points(), limit=1)
        assert series == ["a avg"]

    def test_limit(self):
        series = default_series(make_points(), limit=2)
        assert len(series) == 2

    def test_empty(self):
        assert default_series([]) == []


class TestHarnessChartFlag:
    def test_chart_flag_appends_plot(self, capsys):
        from repro.experiments.harness import main

        assert (
            main(["fig8", "--quick", "--chart", "--instances", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert " = CDS deg avg" in out
