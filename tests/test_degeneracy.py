"""Tests for degenerate-input handling across the geometry stack.

The paper assumes general position (no four cocircular nodes); these
tests feed the library exactly the inputs that assumption excludes and
check the documented guarantees still hold.
"""


from repro.geometry.primitives import Point
from repro.geometry.triangulation import (
    _in_circumcircle,
    _incircle_sign_exact,
    _orient_sign,
    _orient_sign_exact,
    delaunay,
)
from repro.graphs.graph import Graph
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.ldel2_protocol import run_ldel2_protocol
from repro.protocols.ldel_protocol import run_ldel_protocol
from repro.topology.ldel import (
    planar_local_delaunay_graph,
    resolve_degenerate_crossings,
)


class TestExactPredicates:
    def test_orient_sign_exact_collinear(self):
        assert _orient_sign_exact(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    def test_orient_sign_exact_ccw(self):
        assert _orient_sign_exact(Point(0, 0), Point(1, 0), Point(0, 1)) == 1

    def test_orient_sign_matches_exact_on_tiny_determinants(self):
        # Near-collinear float triple: the adaptive filter must agree
        # with the exact computation.
        a, b = Point(0.0, 0.0), Point(1.0, 1.0)
        c = Point(0.5, 0.5 + 1e-18)  # rounds to exactly 0.5
        assert _orient_sign(a, b, c) == _orient_sign_exact(a, b, c)

    def test_incircle_sign_exact_cocircular(self):
        square = (Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1))
        assert _incircle_sign_exact(*square) == 0

    def test_in_circumcircle_boundary_inclusive(self):
        # Exactly cocircular: counted inside so the cavity opens.
        assert _in_circumcircle(Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1))

    def test_in_circumcircle_degenerate_triangle_empty(self):
        assert not _in_circumcircle(
            Point(0, 0), Point(1, 1), Point(2, 2), Point(0, 1)
        )


class TestDegenerateTriangulations:
    def test_point_exactly_on_edge(self):
        # Four collinear points plus one off-line: the interior points
        # land exactly on existing edges during insertion.
        pts = [Point(1, 0), Point(1, 1), Point(1, 3), Point(1, 2), Point(0, 12)]
        tri = delaunay(pts)
        assert sorted(tri.triangles) == [(0, 1, 4), (1, 3, 4), (2, 3, 4)]

    def test_two_cocircular_squares(self):
        pts = [
            Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1),
            Point(10, 0), Point(11, 0), Point(11, 1), Point(10, 1),
        ]
        tri = delaunay(pts)
        # Each square triangulates with exactly one diagonal.
        for quad in ((0, 1, 2, 3), (4, 5, 6, 7)):
            diagonals = [
                (quad[0], quad[2]),
                (quad[1], quad[3]),
            ]
            present = sum(1 for d in diagonals if tuple(sorted(d)) in tri.edges)
            assert present == 1

    def test_concentric_cocircular_ring(self):
        import math

        ring = [
            Point(math.cos(i * math.pi / 4), math.sin(i * math.pi / 4))
            for i in range(8)
        ]
        tri = delaunay(ring)
        # 8 cocircular points: fan triangulation, 6 triangles, planar.
        assert len(tri.triangles) == 6
        graph = Graph(tri.points, tri.edges)
        assert is_planar_embedding(graph)


class TestResolveDegenerateCrossings:
    def crossing_graph(self):
        pts = [Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)]
        return Graph(pts, [(0, 1), (2, 3), (0, 2), (1, 3)])

    def test_removes_exactly_one_of_a_crossing_pair(self):
        graph = self.crossing_graph()
        resolve_degenerate_crossings(graph)
        assert is_planar_embedding(graph)
        # One diagonal survived.
        assert graph.has_edge(0, 1) != graph.has_edge(2, 3)

    def test_deterministic_loser(self):
        # Equal lengths: the lexicographically larger edge loses.
        g1 = self.crossing_graph()
        g2 = self.crossing_graph()
        resolve_degenerate_crossings(g1)
        resolve_degenerate_crossings(g2)
        assert g1.edge_set() == g2.edge_set()
        assert g1.has_edge(0, 1)  # (0,1) < (2,3)

    def test_noop_on_planar_graph(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 1)]
        graph = Graph(pts, [(0, 1), (1, 2), (0, 2)])
        before = graph.edge_set()
        resolve_degenerate_crossings(graph)
        assert graph.edge_set() == before


class TestPlanarityOnCocircularDeployments:
    # The falsifying example hypothesis found: a perfect half-unit
    # square, all four nodes mutually in range.
    SQUARE = [Point(0, 0), Point(0, 0.5), Point(0.5, 0), Point(0.5, 0.5)]

    def test_pldel_planar_on_perfect_square(self):
        udg = UnitDiskGraph(self.SQUARE, 3.0)
        pldel = planar_local_delaunay_graph(udg)
        assert is_planar_embedding(pldel.graph)
        assert is_connected(pldel.graph)

    def test_distributed_protocols_agree_on_square(self):
        udg = UnitDiskGraph(self.SQUARE, 3.0)
        one = run_ldel_protocol(udg)
        centralized = planar_local_delaunay_graph(udg)
        assert one.graph.edge_set() == centralized.graph.edge_set()
        assert is_planar_embedding(one.graph)

    def test_ldel2_planar_on_square(self):
        udg = UnitDiskGraph(self.SQUARE, 3.0)
        two = run_ldel2_protocol(udg)
        assert is_planar_embedding(two.graph)

    def test_grid_deployment_end_to_end(self):
        from repro.core.spanner import build_backbone

        pts = [(float(i), float(j)) for i in range(5) for j in range(5)]
        result = build_backbone(pts, 1.6)
        assert is_planar_embedding(result.ldel_icds)
        assert is_connected(result.ldel_icds_prime)
