"""The single numpy/scipy guard in :mod:`repro.core.compat`.

Three promises: the guard is the one switch that masks numpy out at
runtime (programmatic override beats the environment variable beats
the import), every SoA entry point returns ``None``/falls back when
masked instead of crashing, and the fallback paths reuse the scalar
reference code — which the equivalence suite then compares against the
kernels.  Also pins the deterministic iteration order of
``GridIndex.pairs_within`` that the fallback UDG build relies on.
"""

import os

import pytest

from repro.core import compat
from repro.core.soa import SoaSnapshot, snapshot_for
from repro.geometry.primitives import Point
from repro.graphs.udg import GridIndex, UnitDiskGraph


needs_numpy = pytest.mark.skipif(
    compat.np is None, reason="requires numpy"
)


def _points():
    return [
        Point(0.0, 0.0), Point(1.0, 0.5), Point(2.0, 0.0),
        Point(0.5, 1.5), Point(1.5, 1.5), Point(3.0, 3.0),
    ]


class TestGuard:
    def test_numpy_disabled_masks_and_restores(self):
        before = compat.numpy_active()
        with compat.numpy_disabled():
            assert not compat.numpy_active()
            assert compat.get_numpy() is None
        assert compat.numpy_active() == before

    def test_nested_disable_restores_outer_override(self):
        compat.set_numpy_enabled(True)
        try:
            with compat.numpy_disabled():
                assert compat.get_numpy() is None
            assert compat.numpy_active() == compat.HAVE_NUMPY
        finally:
            compat.set_numpy_enabled(None)

    @needs_numpy
    def test_env_variable_masks(self, monkeypatch):
        monkeypatch.setitem(os.environ, "REPRO_NO_NUMPY", "1")
        assert not compat.numpy_active()
        monkeypatch.setitem(os.environ, "REPRO_NO_NUMPY", "0")
        assert compat.numpy_active()

    @needs_numpy
    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setitem(os.environ, "REPRO_NO_NUMPY", "1")
        compat.set_numpy_enabled(True)
        try:
            assert compat.numpy_active()
        finally:
            compat.set_numpy_enabled(None)


class TestMaskedFallbacks:
    def test_snapshot_entry_points_return_none(self):
        with compat.numpy_disabled():
            assert SoaSnapshot.from_points(_points(), 1.5) is None
            udg = UnitDiskGraph(_points(), 1.5)
            assert snapshot_for(udg) is None
            assert udg.soa_snapshot() is None

    def test_masked_udg_equals_vectorized_udg(self):
        if compat.np is None:
            pytest.skip("requires numpy for the vectorized side")
        soa = UnitDiskGraph(_points(), 1.5)
        with compat.numpy_disabled():
            ref = UnitDiskGraph(_points(), 1.5)
        assert soa.edge_set() == ref.edge_set()
        # The vectorized build must have attached the shared snapshot;
        # the masked build must not.
        assert getattr(soa, "_soa_snapshot", None) is not None
        assert getattr(ref, "_soa_snapshot", None) is None

    def test_masked_pipeline_runs_scalar_path(self):
        from repro.topology.ldel import planar_local_delaunay_graph

        with compat.numpy_disabled():
            result = planar_local_delaunay_graph(UnitDiskGraph(_points(), 1.5))
        assert result.graph.node_count == len(_points())


class TestPairsWithinOrder:
    def test_yields_sorted_unique_pairs(self):
        index = GridIndex(_points(), cell_size=1.5)
        got = list(index.pairs_within(1.5))
        assert got == sorted(set(got))

    def test_order_is_deterministic_across_builds(self):
        # Same points inserted in reverse: the stream must still come
        # out sorted, and relabeling indices back must reproduce the
        # forward build's pairs exactly (the old implementation leaked
        # bucket-dict insertion order into the stream).
        pts = _points()
        n = len(pts)
        a = list(GridIndex(pts, cell_size=1.5).pairs_within(1.5))
        b = list(GridIndex(list(reversed(pts)), cell_size=1.5).pairs_within(1.5))
        assert b == sorted(b)
        remapped = {tuple(sorted((n - 1 - u, n - 1 - v))) for u, v in b}
        assert remapped == set(a)
