"""API-surface guard: every advertised symbol is importable.

Each subpackage declares ``__all__``; this test imports every name, so
a refactor that breaks the public surface (renamed symbol, missed
re-export, circular import) fails loudly here rather than in user
code.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.geometry",
    "repro.graphs",
    "repro.topology",
    "repro.sim",
    "repro.protocols",
    "repro.routing",
    "repro.mobility",
    "repro.workloads",
    "repro.experiments",
    "repro.viz",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_top_level_quickstart_names():
    import repro

    for name in (
        "build_backbone",
        "BackboneResult",
        "UnitDiskGraph",
        "uniform_points",
        "connected_udg_instance",
        "measure_topology",
    ):
        assert hasattr(repro, name)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_no_duplicate_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert len(exported) == len(set(exported)), package_name


def test_py_typed_marker_shipped():
    import repro
    from pathlib import Path

    assert (Path(repro.__file__).parent / "py.typed").exists()
