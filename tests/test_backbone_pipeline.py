"""End-to-end tests: the paper's five headline properties.

(1) planar backbone; (2) bounded backbone degree; (3) spanner for both
hops and length; (4) localized construction; (5) constant per-node
communication.  Each property gets a direct check on random instances.
"""


from repro.core.metrics import hop_stretch, length_stretch
from repro.core.spanner import build_backbone
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.sim.messages import STATUS


class TestProperty1Planarity:
    def test_ldel_icds_planar(self, small_deployments, backbone):
        assert is_planar_embedding(backbone.ldel_icds)
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            assert is_planar_embedding(result.ldel_icds)


class TestProperty2BoundedDegree:
    def test_backbone_degree_constant(self, small_deployments):
        # Paper Lemma 8 bound is enormous; empirically degrees stay
        # tiny.  Assert a comfortably sub-UDG constant.
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            assert max(result.ldel_icds.degrees(), default=0) <= 16
            assert max(result.cds.degrees(), default=0) <= 30

    def test_planar_graph_average_degree(self, backbone):
        # Planar => average degree < 6.
        degs = [d for d in backbone.ldel_icds.degrees() if d > 0]
        assert sum(degs) / len(degs) < 6.0


class TestProperty3Spanner:
    def test_spanning_structures_connected(self, small_deployments):
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            assert is_connected(result.cds_prime)
            assert is_connected(result.icds_prime)
            assert is_connected(result.ldel_icds_prime)

    def test_length_stretch_bounded(self, small_deployments):
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            stats = length_stretch(
                result.ldel_icds_prime, result.udg, skip_udg_adjacent=True
            )
            assert stats.max < 8.0, "length stretch should be a small constant"

    def test_hop_stretch_bounded(self, small_deployments):
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            stats = hop_stretch(
                result.ldel_icds_prime, result.udg, skip_udg_adjacent=True
            )
            assert stats.max < 6.0, "hop stretch should be a small constant"

    def test_lemma5_hop_bound_3h_plus_2(self, small_deployments):
        """Lemma 5's explicit bound: backbone path <= 3h + 2 hops."""
        from repro.graphs.paths import bfs_hops

        for dep in small_deployments[:3]:
            result = build_backbone(dep.points, dep.radius)
            udg = result.udg
            for source in list(udg.nodes())[:8]:
                hops_udg = bfs_hops(udg, source)
                hops_bb = bfs_hops(result.cds_prime, source)
                for target in udg.nodes():
                    h = hops_udg[target]
                    if h > 1:
                        assert hops_bb[target] <= 3 * h + 2


class TestProperty5CommunicationCost:
    def test_constant_messages_per_node(self, small_deployments):
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            # The paper measured ~13 max for CDS and ~60 for the whole
            # pipeline; allow generous constants, assert no blowup.
            assert result.stats_cds.max_per_node() <= 50
            assert result.stats_ldel.max_per_node() <= 120

    def test_total_messages_linear(self, small_deployments):
        for dep in small_deployments:
            result = build_backbone(dep.points, dep.radius)
            n = result.udg.node_count
            assert result.stats_ldel.total <= 120 * n

    def test_ledger_boundaries_nest(self, backbone):
        assert backbone.stats_cds.total < backbone.stats_icds.total
        assert backbone.stats_icds.total < backbone.stats_ldel.total
        n = backbone.udg.node_count
        assert (
            backbone.stats_icds.total - backbone.stats_cds.total == n
        ), "ICDS adds exactly one Status broadcast per node"
        assert backbone.stats_icds.per_kind[STATUS] == n


class TestResultAccessors:
    def test_roles_partition(self, backbone):
        roles = {backbone.role_of(u) for u in backbone.udg.nodes()}
        assert roles <= {"dominator", "connector", "dominatee"}
        for u in backbone.dominators:
            assert backbone.role_of(u) == "dominator"
        for u in backbone.connectors:
            assert backbone.role_of(u) == "connector"

    def test_dominators_of_accessor(self, backbone):
        for u in backbone.dominatees:
            doms = backbone.dominators_of(u)
            assert doms and doms <= backbone.dominators
        for u in backbone.dominators:
            assert backbone.dominators_of(u) == frozenset()

    def test_accepts_raw_coordinate_pairs(self):
        result = build_backbone([(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)], 0.6)
        assert result.udg.node_count == 3

    def test_graph_names(self, backbone):
        assert backbone.cds.name == "CDS"
        assert backbone.ldel_icds.name == "LDel(ICDS)"
        assert backbone.ldel_icds_prime.name == "LDel(ICDS')"

    def test_backbone_edges_within_radius(self, backbone):
        for u, v in backbone.ldel_icds.edges():
            assert backbone.udg.edge_length(u, v) <= backbone.udg.radius + 1e-9

    def test_prime_graphs_extend_base(self, backbone):
        assert backbone.ldel_icds.is_subgraph_of(backbone.ldel_icds_prime)

    def test_disconnected_udg_supported(self):
        # Two far-apart triangles: per-component structures.
        pts = [
            (0.0, 0.0), (0.5, 0.0), (0.25, 0.4),
            (100.0, 0.0), (100.5, 0.0), (100.25, 0.4),
        ]
        result = build_backbone(pts, 0.6)
        assert is_planar_embedding(result.ldel_icds)
        assert len(result.dominators) >= 2
