"""Tests for the Wu & Li marking-process CDS."""


from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.cds import build_cds_family
from repro.protocols.wu_li import (
    apply_rule1,
    apply_rule2,
    initial_marking,
    wu_li_cds,
)


def line_udg(n):
    return UnitDiskGraph([Point(float(i), 0.0) for i in range(n)], 1.0)


class TestInitialMarking:
    def test_line_marks_interior(self):
        # Interior nodes see two non-adjacent neighbors; ends do not.
        marked = initial_marking(line_udg(5))
        assert marked == {1, 2, 3}

    def test_complete_graph_marks_nothing(self):
        pts = [Point(0, 0), Point(0.3, 0), Point(0.15, 0.2)]
        udg = UnitDiskGraph(pts, 1.0)
        assert initial_marking(udg) == set()

    def test_star_marks_hub_only(self):
        pts = [Point(0, 0), Point(1, 0), Point(-1, 0), Point(0, 1)]
        udg = UnitDiskGraph(pts, 1.0)
        assert initial_marking(udg) == {0}


class TestPruningRules:
    def test_rule1_drops_covered_lower_id(self):
        # Nodes 1 and 2 adjacent with N[1] ⊆ N[2]: 1 is dropped.
        pts = [Point(0, 0), Point(0.9, 0.0), Point(1.0, 0.1), Point(1.9, 0.2)]
        udg = UnitDiskGraph(pts, 1.0)
        marked = initial_marking(udg)
        assert {1, 2} <= marked
        pruned = apply_rule1(udg, marked)
        # 1's closed neighborhood {0,1,2,3}... check coverage first:
        if udg.neighbors(1) | {1} <= udg.neighbors(2) | {2}:
            assert 1 not in pruned

    def test_rule2_joint_coverage(self):
        # A diamond: 0-1, 0-2, 1-2, 1-3, 2-3; node 1,2 adjacent and
        # jointly cover node 0's neighborhood.
        pts = [
            Point(0.0, 0.0),
            Point(0.8, 0.4),
            Point(0.8, -0.4),
            Point(1.6, 0.0),
        ]
        udg = UnitDiskGraph(pts, 1.0)
        marked = initial_marking(udg)
        pruned = apply_rule2(udg, marked)
        assert 0 not in pruned or 0 not in marked


class TestWuLiCds:
    def test_line_cds(self):
        outcome = wu_li_cds(line_udg(5))
        assert outcome.gateway_nodes == {1, 2, 3}
        assert is_connected(outcome.cds.subgraph(outcome.gateway_nodes)[0])

    def test_dominating_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            outcome = wu_li_cds(udg)
            gateways = outcome.gateway_nodes
            for v in udg.nodes():
                assert v in gateways or (udg.neighbors(v) & gateways), (
                    f"node {v} undominated by Wu-Li CDS"
                )

    def test_connected_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            outcome = wu_li_cds(udg)
            sub, _ = outcome.cds.subgraph(outcome.gateway_nodes)
            assert is_connected(sub)

    def test_pruning_only_shrinks(self, small_deployments):
        for dep in small_deployments:
            outcome = wu_li_cds(dep.udg())
            assert outcome.gateway_nodes <= outcome.marked_before_pruning

    def test_size_comparable_to_mis_based_cds(self, small_deployments):
        # Both are constant-factor CDS approximations, so their sizes
        # stay within a small factor of each other.  (On these
        # instances Wu-Li is actually *smaller*: Algorithm 1 keeps
        # every elected connector from both directions of each
        # dominator pair — the redundancy EXPERIMENTS.md discusses.)
        for dep in small_deployments:
            udg = dep.udg()
            wu = wu_li_cds(udg).size
            mis_based = len(build_cds_family(udg).backbone_nodes)
            assert wu <= 3 * mis_based + 2
            assert mis_based <= 3 * wu + 2

    def test_size_accessor(self, deployment):
        outcome = wu_li_cds(deployment.udg())
        assert outcome.size == len(outcome.gateway_nodes)
