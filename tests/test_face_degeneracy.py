"""Regression tests for the hardened face-routing predicates.

``_segment_crossing_point`` routes degenerate contacts through the
exact orientation predicate instead of the parametric formula: an
endpoint lying exactly on the other segment comes back
coordinate-exact, collinear overlap stays "no single crossing", and
general-position inputs keep the old parametric result.
``_rhr_next_positions`` skips coincident neighbors (undefined sweep)
while preserving the dead-end bounce.
"""

import math

import pytest

from repro.geometry.primitives import Point
from repro.routing.face import (
    _rhr_next_positions,
    _segment_crossing_point,
    face_route,
)
from repro.graphs.graph import Graph


def P(x, y):
    return Point(float(x), float(y))


class TestSegmentCrossing:
    def test_general_position_crossing(self):
        got = _segment_crossing_point(P(0, 0), P(2, 2), P(0, 2), P(2, 0))
        assert got is not None
        assert got[0] == pytest.approx(1.0) and got[1] == pytest.approx(1.0)

    def test_disjoint_segments(self):
        assert _segment_crossing_point(P(0, 0), P(1, 0), P(0, 1), P(1, 1)) is None

    def test_parallel_segments(self):
        assert _segment_crossing_point(P(0, 0), P(2, 0), P(0, 1), P(2, 1)) is None

    def test_endpoint_on_segment_is_coordinate_exact(self):
        # c sits exactly on ab: the crossing is c itself, not a
        # parametric reconstruction of it.
        a, b = P(0, 0), P(3, 0)
        c, d = P(1, 0), P(1, 5)
        got = _segment_crossing_point(a, b, c, d)
        assert got == c
        assert got[0] == 1.0 and got[1] == 0.0

    def test_shared_endpoint_is_exact(self):
        # The st-line passing through a vertex of the walked edge: the
        # shared endpoint is returned bit-exact (no rounding noise that
        # downstream face-entry comparisons would see).
        a, b = P(0.1, 0.7), P(2.3, 0.7)
        got = _segment_crossing_point(a, b, a, P(0.1, -4.0))
        assert got == a

    def test_target_vertex_on_crossed_edge(self):
        a, b = P(0, 0), P(4, 4)
        c, d = P(2, 2), P(2, -1)  # c on ab interior
        got = _segment_crossing_point(a, b, c, d)
        assert got == c

    def test_collinear_overlap_is_no_crossing(self):
        # ab runs along the cd line: no single crossing point exists,
        # so no face change — matching the old near-zero-denominator
        # behaviour.
        assert _segment_crossing_point(P(0, 0), P(2, 0), P(1, 0), P(3, 0)) is None
        assert _segment_crossing_point(P(0, 0), P(1, 0), P(0, 0), P(1, 0)) is None

    def test_touching_endpoints_of_both_segments(self):
        got = _segment_crossing_point(P(0, 0), P(1, 1), P(1, 1), P(2, 0))
        assert got == P(1, 1)

    def test_near_degenerate_still_parametric(self):
        # Slightly off-collinear stays on the parametric path and lands
        # where the exact crossing is.
        got = _segment_crossing_point(
            P(0, 0), P(2, 1e-9), P(1, -1), P(1, 1)
        )
        assert got is not None
        assert got[0] == pytest.approx(1.0)
        assert got[1] == pytest.approx(5e-10, abs=1e-12)


class TestRhrNext:
    def test_coincident_neighbor_skipped(self):
        here = P(0, 0)
        neighbors = {1: P(0, 0), 2: P(1, 0)}
        assert _rhr_next_positions(here, neighbors, 0.0, None) == 2

    def test_only_coincident_neighbors_dead_end(self):
        here = P(0, 0)
        neighbors = {1: P(0, 0)}
        assert _rhr_next_positions(here, neighbors, 0.0, None) is None

    def test_coincident_with_exclude_bounces(self):
        # Arrived from 3; every other neighbor is coincident: bounce
        # back along the arrival edge rather than hopping in place.
        here = P(0, 0)
        neighbors = {1: P(0, 0), 3: P(1, 1)}
        assert _rhr_next_positions(here, neighbors, 0.0, 3) == 3

    def test_ties_break_to_lowest_id(self):
        here = P(0, 0)
        neighbors = {5: P(1, 0), 2: P(1, 0)}
        assert _rhr_next_positions(here, neighbors, math.pi / 2, None) == 2

    def test_smallest_ccw_sweep_wins(self):
        here = P(0, 0)
        neighbors = {1: P(0, 1), 2: P(1, 0), 3: P(-1, 0)}
        # Reference pointing at +x, sweeps measured ccw: +y is 90deg,
        # -x is 180deg, +x itself snaps to a full turn.
        assert _rhr_next_positions(here, neighbors, 0.0, None) == 1


def test_face_route_survives_duplicate_points():
    # Two coincident nodes on a path: face routing must neither crash
    # nor loop forever on the undefined direction.
    pts = [P(0, 0), P(1, 0), P(1, 0), P(2, 0)]
    g = Graph(pts, [(0, 1), (1, 2), (1, 3), (2, 3)])
    res = face_route(g, 0, 3)
    assert res.reason in ("delivered", "stuck", "loop", "hop-limit")
    if res.delivered:
        for a, b in zip(res.path, res.path[1:]):
            assert g.has_edge(a, b)


def test_face_route_through_collinear_chain():
    # Source, target, and every vertex on one line: all crossings are
    # degenerate contacts, which the exact predicates must resolve.
    pts = [P(0, 0), P(1, 0), P(2, 0), P(3, 0)]
    g = Graph(pts, [(0, 1), (1, 2), (2, 3)])
    res = face_route(g, 0, 3)
    assert res.delivered
    assert res.path == (0, 1, 2, 3)
