"""Tests for the asynchronous event-driven simulator and clustering."""

import random

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.async_clustering import run_async_clustering
from repro.protocols.clustering import centralized_mis, run_clustering
from repro.sim.events import AsyncNetwork, AsyncNodeProcess, LatencyModel
from repro.sim.messages import HELLO


def line_udg(n, spacing=1.0, radius=1.0):
    return UnitDiskGraph([Point(i * spacing, 0.0) for i in range(n)], radius)


class TestLatencyModel:
    def test_sample_in_range(self):
        model = LatencyModel(0.2, 0.8)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.2 <= model.sample(rng) <= 0.8

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            LatencyModel(0.0, 1.0)
        with pytest.raises(ValueError):
            LatencyModel(2.0, 1.0)


class _Echo(AsyncNodeProcess):
    """Broadcasts once; remembers what it heard and when."""

    def __init__(self, node_id, position, neighbor_ids):
        super().__init__(node_id, position, neighbor_ids)
        self.heard: list[int] = []

    def start(self):
        self.broadcast(HELLO)

    def receive(self, message):
        self.heard.append(message.sender)


class TestAsyncNetwork:
    def _run(self, udg, seed=0, latency=None):
        net = AsyncNetwork(
            udg,
            lambda node_id, _net: _Echo(
                node_id,
                udg.positions[node_id],
                tuple(sorted(udg.neighbors(node_id))),
            ),
            seed=seed,
            latency=latency,
        )
        finish = net.run()
        return net, finish

    def test_every_broadcast_delivered_per_neighbor(self):
        udg = line_udg(5)
        net, _ = self._run(udg)
        # Line of 5: 2*4 directed deliveries.
        assert net.delivered_count == 8
        assert net.processes[1].heard.count(0) == 1

    def test_clock_advances_to_last_delivery(self):
        udg = line_udg(3)
        net, finish = self._run(udg, latency=LatencyModel(0.5, 0.5))
        assert finish == pytest.approx(0.5)

    def test_deterministic_per_seed(self):
        udg = line_udg(6)
        net1, t1 = self._run(udg, seed=9)
        net2, t2 = self._run(udg, seed=9)
        assert t1 == t2
        assert [p.heard for p in net1.processes] == [
            p.heard for p in net2.processes
        ]

    def test_different_seeds_differ(self):
        udg = line_udg(6)
        _, t1 = self._run(udg, seed=1)
        _, t2 = self._run(udg, seed=2)
        assert t1 != t2

    def test_max_events_guard(self):
        udg = line_udg(2)

        class Chatter(AsyncNodeProcess):
            def start(self):
                self.broadcast("Noise")

            def receive(self, message):
                self.broadcast("Noise")

        net = AsyncNetwork(
            udg,
            lambda node_id, _net: Chatter(
                node_id,
                udg.positions[node_id],
                tuple(sorted(udg.neighbors(node_id))),
            ),
        )
        with pytest.raises(RuntimeError):
            net.run(max_events=50)

    def test_detached_process_cannot_broadcast(self):
        proc = AsyncNodeProcess(0, Point(0, 0), ())
        with pytest.raises(RuntimeError):
            proc.broadcast("Hello")


class TestAsyncClustering:
    def test_matches_synchronous_on_line(self):
        udg = line_udg(9)
        outcome = run_async_clustering(udg)
        assert outcome.dominators == {0, 2, 4, 6, 8}

    @pytest.mark.parametrize("seed", range(6))
    def test_timing_independence(self, small_deployments, seed):
        """The lowest-ID MIS is the same under any message delays."""
        udg = small_deployments[seed % len(small_deployments)].udg()
        outcome = run_async_clustering(
            udg, seed=seed, latency=LatencyModel(0.01, 5.0)
        )
        assert outcome.dominators == centralized_mis(udg)

    def test_matches_sync_protocol(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            sync = run_clustering(udg)
            asyn = run_async_clustering(udg, seed=3)
            assert sync.dominators == asyn.dominators
            assert dict(sync.dominators_of) == dict(asyn.dominators_of)

    def test_message_bound_holds_asynchronously(self, small_deployments):
        for dep in small_deployments:
            outcome = run_async_clustering(dep.udg(), seed=1)
            assert outcome.stats.max_per_node() <= 6

    def test_extreme_jitter(self, small_deployments):
        """Three orders of magnitude of delay variance: still correct."""
        udg = small_deployments[0].udg()
        outcome = run_async_clustering(
            udg, seed=13, latency=LatencyModel(0.001, 10.0)
        )
        assert outcome.dominators == centralized_mis(udg)
        for doms in outcome.dominators_of.values():
            assert len(doms) <= 5

    def test_single_node(self):
        udg = UnitDiskGraph([Point(0, 0)], 1.0)
        outcome = run_async_clustering(udg)
        assert outcome.dominators == {0}
        assert outcome.finish_time == 0.0
