"""Unit tests for repro.workloads.generators."""

import random

import pytest

from repro.graphs.paths import is_connected
from repro.workloads.generators import (
    clustered_points,
    connected_udg_instance,
    corridor_points,
    grid_points,
    uniform_points,
)


class TestUniformPoints:
    def test_count_and_bounds(self, rng):
        pts = uniform_points(50, 100.0, rng)
        assert len(pts) == 50
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)

    def test_zero_points(self, rng):
        assert uniform_points(0, 10.0, rng) == []

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            uniform_points(-1, 10.0, rng)

    def test_deterministic_per_seed(self):
        a = uniform_points(10, 50.0, random.Random(3))
        b = uniform_points(10, 50.0, random.Random(3))
        assert a == b


class TestClusteredPoints:
    def test_count_and_bounds(self, rng):
        pts = clustered_points(40, 100.0, rng, clusters=4)
        assert len(pts) == 40
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)

    def test_needs_a_cluster(self, rng):
        with pytest.raises(ValueError):
            clustered_points(10, 100.0, rng, clusters=0)

    def test_clusters_are_tight(self, rng):
        # With one cluster and small spread, points bunch together.
        pts = clustered_points(30, 100.0, rng, clusters=1, spread_fraction=0.01)
        xs = [p.x for p in pts]
        assert max(xs) - min(xs) < 20.0


class TestGridPoints:
    def test_exact_count(self, rng):
        pts = grid_points(37, 100.0, rng)
        assert len(pts) == 37

    def test_perfect_square_covers_region(self, rng):
        pts = grid_points(25, 100.0, rng, jitter=0.0)
        xs = sorted({round(p.x, 6) for p in pts})
        assert len(xs) == 5  # 5x5 grid columns

    def test_bounds(self, rng):
        pts = grid_points(50, 60.0, rng)
        assert all(0 <= p.x <= 60 and 0 <= p.y <= 60 for p in pts)


class TestCorridorPoints:
    def test_confined_to_strip(self, rng):
        pts = corridor_points(40, 100.0, rng, width_fraction=0.1)
        assert all(45.0 <= p.y <= 55.0 for p in pts)
        assert len(pts) == 40


class TestConnectedUdgInstance:
    def test_returns_connected_udg(self, rng):
        dep = connected_udg_instance(30, 150.0, 55.0, rng)
        assert is_connected(dep.udg())
        assert dep.radius == 55.0 and dep.side == 150.0

    def test_subcritical_regime_raises(self, rng):
        with pytest.raises(RuntimeError):
            connected_udg_instance(30, 1000.0, 5.0, rng, max_attempts=5)

    def test_unknown_generator_rejected(self, rng):
        with pytest.raises(ValueError):
            connected_udg_instance(10, 100.0, 50.0, rng, generator="hexagonal")

    @pytest.mark.parametrize("generator", ["clustered", "grid", "corridor"])
    def test_alternative_generators(self, rng, generator):
        dep = connected_udg_instance(
            25, 120.0, 60.0, rng, generator=generator
        )
        assert is_connected(dep.udg())
        assert len(dep.points) == 25
