"""Unit tests for the batched vectorized route engine.

The engine's contract is parity: every batch kernel must return the
same paths, hop counts, and terminal reasons as the scalar routers in
``repro.routing``, on both radio models, with or without numpy, and
through the straggler-drain path.  These tests pin that contract plus
the batch-result accounting (delivery rates, unreachable pairs) and
the failure-replay summaries.
"""

import math
import random

import pytest

import repro.core.route_engine as re_mod
from repro.core.compat import numpy_disabled
from repro.core.route_engine import (
    DELIVERED,
    METHODS,
    BackboneRouter,
    RouteEngine,
    component_labels_for,
    replay_failures,
)
from repro.core.spanner import build_backbone
from repro.graphs.quasi import QuasiUnitDiskGraph
from repro.graphs.udg import UnitDiskGraph
from repro.routing.backbone_routing import backbone_route
from repro.routing.compass import compass_route
from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import greedy_route
from repro.workloads.generators import connected_udg_instance

SCALARS = {"greedy": greedy_route, "compass": compass_route, "gpsr": gpsr_route}


def sample_pairs(n, count, seed):
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        s, t = rng.randrange(n), rng.randrange(n)
        if s != t:
            pairs.append((s, t))
    return pairs


@pytest.fixture(scope="module")
def world():
    rng = random.Random(11)
    dep = connected_udg_instance(70, 170.0, 45.0, rng)
    udg = UnitDiskGraph(dep.points, dep.radius)
    return udg, sample_pairs(udg.node_count, 60, 5)


@pytest.fixture(scope="module")
def sparse_world():
    # Small radius on a wide field: several components, so a good
    # fraction of sampled pairs are genuinely unreachable.
    rng = random.Random(23)
    pts = [(rng.uniform(0, 300), rng.uniform(0, 300)) for _ in range(60)]
    udg = UnitDiskGraph(pts, 45.0)
    return udg, sample_pairs(udg.node_count, 60, 7)


@pytest.fixture(scope="module")
def backbone_world():
    rng = random.Random(17)
    dep = connected_udg_instance(80, 190.0, 50.0, rng, generator="clustered")
    result = build_backbone(dep.points, dep.radius, mode="fast")
    return result, sample_pairs(result.udg.node_count, 50, 9)


def assert_batch_matches_scalar(graph, pairs, method):
    batch = RouteEngine(graph).route_pairs(pairs, method=method)
    scalar = SCALARS[method]
    for i, (s, t) in enumerate(pairs):
        ref = scalar(graph, s, t)
        assert batch.path(i) == ref.path, f"{method} path differs at {(s, t)}"
        assert batch.reason(i) == ref.reason
        assert int(batch.hops[i]) == ref.hops
        # np.hypot and math.hypot may round a hop differently by 1 ulp.
        assert float(batch.lengths[i]) == pytest.approx(
            ref.length(graph), rel=1e-12, abs=1e-12
        )


@pytest.mark.parametrize("method", METHODS)
def test_batch_matches_scalar_on_udg(world, method):
    graph, pairs = world
    assert_batch_matches_scalar(graph, pairs, method)


@pytest.mark.parametrize("method", METHODS)
def test_batch_matches_scalar_on_sparse(sparse_world, method):
    graph, pairs = sparse_world
    assert_batch_matches_scalar(graph, pairs, method)


@pytest.mark.parametrize("method", METHODS)
def test_batch_matches_scalar_on_quasi(method):
    rng = random.Random(31)
    pts = [(rng.uniform(0, 160), rng.uniform(0, 160)) for _ in range(55)]
    quasi = QuasiUnitDiskGraph(
        pts, 45.0, epsilon=0.7, link_seed=3, keep_probability=0.5
    )
    assert_batch_matches_scalar(quasi, sample_pairs(55, 50, 13), method)


def test_unreachable_accounting_mirrors_components(sparse_world):
    graph, pairs = sparse_world
    labels = component_labels_for(graph)
    expected = sum(1 for s, t in pairs if labels[s] != labels[t])
    assert expected > 0, "fixture should produce cross-component pairs"
    batch = RouteEngine(graph).route_pairs(pairs, method="greedy")
    assert batch.unreachable_pairs == expected
    # An unreachable pair can never be delivered, whatever the method.
    for i, (s, t) in enumerate(pairs):
        if labels[s] != labels[t]:
            assert batch.reason(i) != "delivered"
    reachable = batch.pairs - expected
    assert batch.reachable_delivery_rate == pytest.approx(
        batch.delivered_count / reachable
    )
    assert batch.delivery_rate == pytest.approx(batch.delivered_count / len(pairs))


def test_keep_paths_false_skips_materialization(world):
    graph, pairs = world
    batch = RouteEngine(graph).route_pairs(pairs, method="greedy", keep_paths=False)
    with pytest.raises(ValueError):
        batch.path(0)
    summary = batch.summary()
    assert summary["pairs"] == len(pairs)
    assert 0.0 <= summary["delivery_rate"] <= 1.0
    assert set(summary["reasons"]) == set(re_mod.REASON_STRINGS)


def test_chunked_equals_unchunked(world):
    graph, pairs = world
    engine = RouteEngine(graph)
    whole = engine.route_pairs(pairs, method="gpsr")
    tiny = engine.route_pairs(pairs, method="gpsr", chunk=7)
    for i in range(len(pairs)):
        assert whole.path(i) == tiny.path(i)
        assert whole.reason(i) == tiny.reason(i)


@pytest.mark.parametrize("method", METHODS)
def test_straggler_drain_keeps_parity(world, method, monkeypatch):
    # Force the bailout on round one with every query still active:
    # the entire batch goes through _drain_stragglers, which must strip
    # the partial step records and still return scalar-identical paths.
    monkeypatch.setattr(re_mod, "_BAIL_ROUNDS", 1)
    monkeypatch.setattr(re_mod, "_BAIL_ACTIVE", 1 << 30)
    graph, pairs = world
    assert_batch_matches_scalar(graph, pairs, method)


def test_result_objects_round_trip(world):
    graph, pairs = world
    batch = RouteEngine(graph).route_pairs(pairs, method="greedy")
    for i, res in enumerate(batch.results()):
        assert res.path == batch.path(i)
        assert res.delivered == (int(batch.reasons[i]) == DELIVERED)
        assert res.hops == int(batch.hops[i])


def test_pair_validation_and_unknown_method(world):
    graph, pairs = world
    engine = RouteEngine(graph)
    with pytest.raises(ValueError):
        engine.route_pairs([(0, graph.node_count)], method="greedy")
    with pytest.raises(ValueError):
        engine.route_pairs(pairs, method="dijkstra")


def test_no_numpy_fallback_matches_vectorized(world):
    graph, pairs = world
    vec = RouteEngine(graph).route_pairs(pairs, method="gpsr")
    with numpy_disabled():
        plain = RouteEngine(graph).route_pairs(pairs, method="gpsr")
    for i in range(len(pairs)):
        assert plain.path(i) == vec.path(i)
        assert plain.reason(i) == vec.reason(i)
        assert plain.hops[i] == int(vec.hops[i])


# -- backbone routing ---------------------------------------------------------


@pytest.mark.parametrize("mode", ("gpsr", "greedy"))
def test_backbone_batch_matches_scalar(backbone_world, mode):
    result, pairs = backbone_world
    batch = BackboneRouter(result).route_pairs(pairs, mode=mode)
    for i, (s, t) in enumerate(pairs):
        ref = backbone_route(result, s, t, mode=mode)
        assert batch.path(i) == ref.path, f"backbone {mode} differs at {(s, t)}"
        assert batch.reason(i) == ref.reason
        assert int(batch.hops[i]) == ref.hops


def test_backbone_shortest_matches_dijkstra_reference(backbone_world):
    result, pairs = backbone_world
    router = BackboneRouter(result)
    batch = router.route_pairs(pairs, mode="shortest", keep_paths=False)
    ref = router._route_pairs_scalar(
        pairs, mode="shortest", max_hops=None, keep_paths=False,
        count_unreachable=False,
    )
    for i in range(len(pairs)):
        assert int(batch.reasons[i]) == int(ref.reasons[i])
        if int(batch.reasons[i]) == DELIVERED and float(ref.lengths[i]) > 0.0:
            rel = abs(float(batch.lengths[i]) - float(ref.lengths[i]))
            rel /= float(ref.lengths[i])
            assert rel <= 1e-9


def test_backbone_core_cache_is_transparent(backbone_world):
    result, pairs = backbone_world
    router = BackboneRouter(result)
    cold = router.route_pairs(pairs, mode="gpsr", use_cache=False)
    warm = router.route_pairs(pairs, mode="gpsr")
    again = router.route_pairs(pairs, mode="gpsr")
    for i in range(len(pairs)):
        assert cold.path(i) == warm.path(i) == again.path(i)
        assert cold.reason(i) == warm.reason(i) == again.reason(i)


# -- failure replay -----------------------------------------------------------


def test_replay_no_loss_matches_plain_batch(backbone_world):
    result, pairs = backbone_world
    plain = BackboneRouter(result).route_pairs(pairs, mode="gpsr", keep_paths=False)
    report = replay_failures(result, pairs, node_loss=0.0, link_loss=0.0)
    assert report["failed_nodes"] == 0
    assert report["endpoint_failed"] == 0
    assert report["routed"] == len(pairs)
    assert report["survived"] == report["delivered"] == plain.delivered_count
    assert report["delivery_rate"] == pytest.approx(plain.delivery_rate)
    assert report["stretch_samples"] == report["survived"]
    assert report["stretch_avg"] >= 1.0 - 1e-9


def test_replay_node_loss_is_deterministic_and_degrades(backbone_world):
    result, pairs = backbone_world
    a = replay_failures(result, pairs, node_loss=0.2, seed=4)
    b = replay_failures(result, pairs, node_loss=0.2, seed=4)
    assert a == b
    assert a["failed_nodes"] > 0
    assert a["routed"] + a["endpoint_failed"] == len(pairs)
    baseline = replay_failures(result, pairs)
    assert a["delivery_rate"] <= baseline["delivery_rate"] + 1e-12


def test_replay_total_link_loss_drops_everything(backbone_world):
    result, pairs = backbone_world
    report = replay_failures(result, pairs, link_loss=1.0, with_stretch=False)
    assert report["survived"] == 0
    assert report["delivery_rate"] == 0.0
    assert report["link_dropped"] == report["delivered"]
    assert report["stretch_samples"] == 0


# -- RouteResult caching (scalar side) ---------------------------------------


def test_route_result_length_and_power_cost_cached(world):
    graph, pairs = world
    s, t = pairs[0]
    res = greedy_route(graph, s, t)
    assert res.delivered and res.hops >= 1
    expected_len = 0.0
    expected_sq = 0.0
    pos = graph.positions
    for a, b in zip(res.path, res.path[1:]):
        d = math.hypot(pos[b][0] - pos[a][0], pos[b][1] - pos[a][1])
        expected_len += d
        expected_sq += d * d
    assert res.length(graph) == pytest.approx(expected_len, rel=1e-12)
    assert res.power_cost(graph) == pytest.approx(expected_sq, rel=1e-12)
    assert res.power_cost(graph, alpha=1.0) == res.length(graph)
    # Repeat calls hit the per-(graph, alpha) cache: identical bits.
    assert res.length(graph) == res.length(graph)
    assert res.power_cost(graph, alpha=4.0) == res.power_cost(graph, alpha=4.0)
