"""Unit tests for repro.graphs.paths."""

import math

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.paths import (
    bfs_hops,
    breadth_first_path,
    connected_components,
    dijkstra_lengths,
    is_connected,
    shortest_path,
)


def path_graph(n):
    pts = [Point(float(i), 0.0) for i in range(n)]
    return Graph(pts, [(i, i + 1) for i in range(n - 1)])


def detour_graph():
    """Two routes 0->3: direct long edge vs short zig-zag."""
    pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0), Point(1.5, 2.0)]
    g = Graph(pts, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)])
    return g


class TestBfsHops:
    def test_on_path(self):
        g = path_graph(5)
        assert bfs_hops(g, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_is_minus_one(self):
        g = Graph([Point(0, 0), Point(10, 10)])
        assert bfs_hops(g, 0) == [0, -1]

    def test_source_only(self):
        g = Graph([Point(0, 0)])
        assert bfs_hops(g, 0) == [0]


class TestDijkstra:
    def test_euclidean_lengths_on_path(self):
        g = path_graph(4)
        assert dijkstra_lengths(g, 0) == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_unreachable_is_inf(self):
        g = Graph([Point(0, 0), Point(5, 5)])
        assert dijkstra_lengths(g, 0)[1] == math.inf

    def test_custom_weight(self):
        g = path_graph(3)
        hops = dijkstra_lengths(g, 0, weight=lambda u, v: 1.0)
        assert hops == pytest.approx([0.0, 1.0, 2.0])

    def test_prefers_shorter_total_length(self):
        g = detour_graph()
        d = dijkstra_lengths(g, 0)
        # The straight chain 0-1-2-3 (length 3) beats 0-4-3 (length 5).
        assert d[3] == pytest.approx(3.0)


class TestPathQueries:
    def test_bfs_path_minimizes_hops(self):
        g = detour_graph()
        result = breadth_first_path(g, 0, 3)
        assert result.found and result.hops == 2
        assert result.nodes == (0, 4, 3)

    def test_dijkstra_path_minimizes_length(self):
        g = detour_graph()
        result = shortest_path(g, 0, 3)
        assert result.found
        assert result.nodes == (0, 1, 2, 3)
        assert result.length == pytest.approx(3.0)

    def test_source_equals_target(self):
        g = path_graph(3)
        for fn in (breadth_first_path, shortest_path):
            result = fn(g, 1, 1)
            assert result.found and result.hops == 0 and result.length == 0.0

    def test_no_path(self):
        g = Graph([Point(0, 0), Point(9, 9)])
        for fn in (breadth_first_path, shortest_path):
            result = fn(g, 0, 1)
            assert not result.found
            assert result.length == math.inf

    def test_path_length_matches_edges(self):
        g = path_graph(5)
        result = shortest_path(g, 0, 4)
        assert result.length == pytest.approx(4.0)
        assert result.hops == 4


class TestDiameter:
    def test_path_diameter(self):
        from repro.graphs.paths import hop_diameter

        assert hop_diameter(path_graph(6)) == 5

    def test_edgeless_diameter_zero(self):
        from repro.graphs.paths import hop_diameter

        assert hop_diameter(Graph([Point(0, 0), Point(5, 5)])) == 0

    def test_disconnected_uses_components(self):
        from repro.graphs.paths import hop_diameter

        pts = [Point(float(i), 0.0) for i in range(6)]
        g = Graph(pts, [(0, 1), (1, 2), (4, 5)])
        assert hop_diameter(g) == 2

    def test_eccentricity(self):
        from repro.graphs.paths import hop_eccentricity

        g = path_graph(5)
        assert hop_eccentricity(g, 0) == 4
        assert hop_eccentricity(g, 2) == 2

    def test_backbone_diameter_tracks_udg(self, deployment, backbone):
        from repro.graphs.paths import hop_diameter

        udg_diam = hop_diameter(backbone.udg)
        bb_diam = hop_diameter(backbone.cds_prime)
        assert bb_diam <= 3 * udg_diam + 2


class TestConnectivity:
    def test_connected_path(self):
        assert is_connected(path_graph(6))

    def test_disconnected(self):
        g = Graph([Point(0, 0), Point(9, 9)])
        assert not is_connected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected(Graph([]))

    def test_components(self):
        pts = [Point(float(i), 0.0) for i in range(5)]
        g = Graph(pts, [(0, 1), (2, 3)])
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3], [4]]
