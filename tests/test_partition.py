"""Partition scenarios: the network splits, operates, and heals.

The paper's guarantees are per-component; these tests drive an actual
split-and-heal scenario and check every layer behaves: structures stay
valid per component, routing fails *cleanly* across the cut and
recovers after the heal, and maintenance notices both transitions.
"""


from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.graphs.paths import connected_components
from repro.graphs.planarity import is_planar_embedding
from repro.mobility.maintenance import BackboneMaintainer
from repro.routing.backbone_routing import backbone_route


def two_islands(gap: float):
    """Two 5-node clusters ``gap`` apart (radius 1.5 links within)."""
    left = [Point(0, 0), Point(1, 0), Point(0.5, 1), Point(1.5, 1), Point(1, 2)]
    right = [p.translated(gap, 0.0) for p in left]
    return left + right


class TestSplitNetwork:
    def test_structures_valid_per_component(self):
        points = two_islands(gap=10.0)
        result = build_backbone(points, 1.5)
        assert is_planar_embedding(result.ldel_icds)
        comps = connected_components(result.udg)
        assert len(comps) == 2
        # Each component is spanned by LDel(ICDS').
        prime_comps = connected_components(result.ldel_icds_prime)
        for comp in comps:
            assert any(comp <= pc for pc in prime_comps)

    def test_each_island_has_a_dominator(self):
        points = two_islands(gap=10.0)
        result = build_backbone(points, 1.5)
        left_nodes = set(range(5))
        right_nodes = set(range(5, 10))
        assert result.dominators & left_nodes
        assert result.dominators & right_nodes

    def test_cross_cut_routing_fails_cleanly(self):
        points = two_islands(gap=10.0)
        result = build_backbone(points, 1.5)
        route = backbone_route(result, 0, 9)
        assert not route.delivered
        assert route.reason in ("stuck", "loop", "hop-limit")

    def test_intra_island_routing_works(self):
        points = two_islands(gap=10.0)
        result = build_backbone(points, 1.5)
        assert backbone_route(result, 0, 4).delivered
        assert backbone_route(result, 5, 9).delivered


class TestHeal:
    def test_backbone_bridge_heal_detected_by_default(self):
        # Translation preserves every intra-island link, so nothing
        # breaks — but the new bridge links join two backbone nodes,
        # which invalidates the cached per-component structures.  The
        # maintainer detects the heal even under the break-only
        # default (benign gains between dominatees still cost
        # nothing; see test_mobility.py).
        points = two_islands(gap=10.0)
        result = build_backbone(points, 1.5)
        maintainer = BackboneMaintainer(result)
        healed = two_islands(gap=2.0)
        assert maintainer.check(healed) == ()
        assert maintainer.invalidating_links(healed)
        report = maintainer.update(healed)
        assert report.rebuilt
        assert report.invalidating_links
        assert backbone_route(maintainer.result, 0, 9).delivered

    def test_watch_gains_reconnects_routing(self):
        points = two_islands(gap=10.0)
        result = build_backbone(points, 1.5)
        maintainer = BackboneMaintainer(result)

        healed = two_islands(gap=2.0)  # 1.5-radius links now bridge
        from repro.graphs.udg import UnitDiskGraph

        assert len(connected_components(UnitDiskGraph(healed, 1.5))) == 1
        assert maintainer.new_links(healed)
        report = maintainer.update(healed, watch_gains=True)
        assert report.rebuilt
        assert backbone_route(maintainer.result, 0, 9).delivered

    def test_split_detected_as_breaks(self):
        points = two_islands(gap=2.0)  # connected initially
        result = build_backbone(points, 1.5)
        maintainer = BackboneMaintainer(result)
        split = two_islands(gap=10.0)
        broken = maintainer.check(split)
        assert broken, "pulling the islands apart must break bridge links"
        report = maintainer.update(split)
        assert report.rebuilt
        assert not backbone_route(maintainer.result, 0, 9).delivered
