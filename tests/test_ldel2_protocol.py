"""Tests for the distributed LDel^2 protocol."""


from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.protocols.ldel2_protocol import run_ldel2_protocol
from repro.protocols.ldel_protocol import run_ldel_protocol
from repro.sim.messages import LOCATION
from repro.topology.ldel import local_delaunay_graph


class TestEquivalenceWithCentralized:
    def test_matches_centralized_ldel2(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            distributed = run_ldel2_protocol(udg)
            centralized = local_delaunay_graph(udg, k=2)
            assert set(distributed.triangles) == set(centralized.triangles)
            assert distributed.graph.edge_set() == centralized.graph.edge_set()


class TestPlanarWithoutPruning:
    def test_planar_as_built(self, small_deployments):
        for dep in small_deployments:
            outcome = run_ldel2_protocol(dep.udg())
            assert is_planar_embedding(outcome.graph)

    def test_connected(self, small_deployments):
        for dep in small_deployments:
            outcome = run_ldel2_protocol(dep.udg())
            assert is_connected(outcome.graph)

    def test_subset_of_pruned_ldel1(self, small_deployments):
        # LDel^2's triangles are a subset of LDel^1's survivors' union
        # with Gabriel edges; edge counts are near-identical.
        for dep in small_deployments:
            udg = dep.udg()
            two = run_ldel2_protocol(udg)
            one = run_ldel_protocol(udg)
            assert two.gabriel_edges == one.gabriel_edges


class TestCostTradeoff:
    def test_fewer_rounds_than_ldel1_pipeline(self, deployment):
        udg = deployment.udg()
        two = run_ldel2_protocol(udg)
        one = run_ldel_protocol(udg)
        assert two.rounds < one.rounds  # no pruning/confirm phases

    def test_extra_neighborhood_message_per_node(self, deployment):
        udg = deployment.udg()
        outcome = run_ldel2_protocol(udg)
        from repro.protocols.ldel2_protocol import NEIGHBORHOOD

        assert outcome.stats.per_kind[NEIGHBORHOOD] == udg.node_count
        assert outcome.stats.per_kind[LOCATION] == udg.node_count

    def test_message_count_bounded(self, small_deployments):
        for dep in small_deployments:
            outcome = run_ldel2_protocol(dep.udg())
            assert outcome.stats.max_per_node() <= 60
