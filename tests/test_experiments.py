"""Tests for the experiment runner and CLI harness (smoke scale)."""

import pytest

from repro.experiments.harness import main as harness_main
from repro.experiments.runner import (
    ExperimentConfig,
    STRETCH_TOPOLOGIES,
    TABLE1_ORDER,
    TopologyRow,
    build_all_topologies,
    fig8_degree_vs_density,
    fig10_comm_vs_density,
    format_rows,
    format_series,
    table1,
)

SMOKE = ExperimentConfig(instances=2, seed=5)


@pytest.fixture(scope="module")
def table1_rows():
    return table1(n=25, radius=60.0, config=SMOKE)


class TestBuildAllTopologies:
    def test_all_names_present(self, deployment):
        graphs, backbone = build_all_topologies(deployment.udg())
        assert set(graphs) == set(TABLE1_ORDER)
        assert backbone.udg.node_count == deployment.udg().node_count

    def test_expected_subgraph_relations(self, deployment):
        graphs, _ = build_all_topologies(deployment.udg())
        assert graphs["RNG"].is_subgraph_of(graphs["GG"])
        assert graphs["CDS"].is_subgraph_of(graphs["ICDS"])
        assert graphs["GG"].is_subgraph_of(graphs["UDG"])


class TestTable1:
    def test_row_order_matches_paper(self, table1_rows):
        assert [r.name for r in table1_rows] == list(TABLE1_ORDER)

    def test_stretch_only_where_paper_reports_it(self, table1_rows):
        for row in table1_rows:
            assert row.has_stretch == (row.name in STRETCH_TOPOLOGIES)

    def test_udg_is_densest(self, table1_rows):
        by_name = {r.name: r for r in table1_rows}
        udg = by_name["UDG"]
        for row in table1_rows:
            assert row.edges <= udg.edges + 1e-9

    def test_backbone_sparser_than_flat_planar_graphs(self, table1_rows):
        by_name = {r.name: r for r in table1_rows}
        assert by_name["LDel(ICDS)"].edges <= by_name["LDel"].edges

    def test_stretch_values_sane(self, table1_rows):
        for row in table1_rows:
            if row.has_stretch:
                assert 1.0 <= row.len_avg <= row.len_max
                assert 1.0 <= row.hop_avg <= row.hop_max


class TestTopologyRowAbsorb:
    def test_incremental_average(self, deployment):
        udg = deployment.udg()
        row = TopologyRow("UDG")
        row.absorb(udg, None, None)
        first_avg = row.deg_avg
        row.absorb(udg, None, None)
        assert row.deg_avg == pytest.approx(first_avg)
        assert row.edges == pytest.approx(udg.edge_count)


class TestSweeps:
    def test_fig8_shape(self):
        points = fig8_degree_vs_density(ns=(20, 30), config=SMOKE)
        assert [p.x for p in points] == [20, 30]
        assert "LDel(ICDS) deg max" in points[0].values
        assert "CDS deg avg" in points[0].values

    def test_fig10_comm_keys(self):
        points = fig10_comm_vs_density(ns=(20,), config=SMOKE)
        values = points[0].values
        assert set(values) == {
            f"{n} comm {k}"
            for n in ("CDS", "ICDS", "LDelICDS")
            for k in ("max", "avg")
        }
        # Cumulative ledgers are monotone.
        assert values["CDS comm max"] <= values["ICDS comm max"]
        assert values["ICDS comm max"] <= values["LDelICDS comm max"]


class TestFormatting:
    def test_format_rows_renders_all(self, table1_rows):
        text = format_rows(table1_rows)
        for name in TABLE1_ORDER:
            assert name in text
        assert "deg_a" in text

    def test_format_series(self):
        points = fig8_degree_vs_density(ns=(20,), config=SMOKE)
        text = format_series(points, x_label="nodes")
        assert "nodes" in text and "20" in text

    def test_format_empty_series(self):
        assert format_series([]) == "(no data)"


class TestHarnessCli:
    def test_quick_table1(self, capsys):
        assert harness_main(["table1", "--quick", "--instances", "1"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out
        assert "LDel(ICDS')" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            harness_main(["fig99"])
