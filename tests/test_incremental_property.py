"""Property test: a single-node move is *local*.

The incremental engine's whole premise is that one move invalidates
only a bounded neighborhood.  For a random single-node move, every
node outside the dilated event halo must keep bit-identical UDG
adjacency, role, and incident LDel(ICDS) edges — and the full
maintained state must stay bit-identical to a from-scratch rebuild.

The halo radii asserted are derived from the stage halos, in
contrapositive form (every changed node must sit close to an event
point):

* adjacency — within ``1r`` of the mover's old/new position (a UDG
  edge only changes when an endpoint moves);
* dominator status — within the ``3r`` election halo, asserted when
  the engine itself certified every repair (``repairs_fallback == 0``;
  an escaped cascade is exactly the case the engine reports as a
  fallback);
* connector roles and incident LDel edges — within ``10r``: a
  certified dominator flip (3r) moves dominator sets one hop out (4r),
  proposals one more (5r), arena winners span an arena's 2-hop extent
  (7r), slot-2 cascades one arena further (~9r), and PLDel membership
  changes dilate by the planarizer's own reach inside that envelope.
"""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point, dist
from repro.incremental.engine import IncrementalMaintainer
from repro.incremental.events import Event
from repro.workloads.generators import connected_udg_instance

N = 300
RADIUS = 18.0
SIDE = 10.0 * math.sqrt(N)
#: One fixed deployment; each example builds a fresh maintainer so
#: examples stay independent (and shrinking reproducible).
DEPLOYMENT = connected_udg_instance(N, SIDE, RADIUS, random.Random(42))


def _incident(edges, n):
    """Per-node frozensets of incident edges."""
    out = [set() for _ in range(n)]
    for u, v in edges:
        out[u].add((u, v))
        out[v].add((u, v))
    return [frozenset(s) for s in out]


def _roles(snap, n):
    return [
        "dominator"
        if u in snap.dominators
        else "connector"
        if u in snap.connectors
        else "dominatee"
        for u in range(n)
    ]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    mover=st.integers(min_value=0, max_value=N - 1),
    dx=st.floats(-12.0, 12.0, allow_nan=False, allow_infinity=False),
    dy=st.floats(-12.0, 12.0, allow_nan=False, allow_infinity=False),
)
def test_single_move_is_local_and_exact(mover, dx, dy):
    maintainer = IncrementalMaintainer(list(DEPLOYMENT.points), RADIUS)
    before = maintainer.snapshot()
    old = maintainer.udg.positions[mover]
    new = Point(
        min(max(old.x + dx, 0.0), SIDE), min(max(old.y + dy, 0.0), SIDE)
    )
    report = maintainer.apply([Event("move", node=mover, x=new.x, y=new.y)])
    after = maintainer.snapshot()

    # The tripwire: bit-identity with a from-scratch rebuild.
    outcome = maintainer.verify()
    assert outcome["identical"], f"mismatches: {outcome['mismatches']}"

    event_points = (old, new)

    def halo_dist(u):
        p = after.positions[u]
        return min(dist(p, q) for q in event_points)

    # Adjacency: only edges touching the mover can change.
    adj_before = _incident(before.udg_edges, N)
    adj_after = _incident(after.udg_edges, N)
    for u in range(N):
        if u == mover or adj_before[u] == adj_after[u]:
            continue
        assert halo_dist(u) <= RADIUS + 1e-9, (
            f"adjacency of node {u} changed at distance {halo_dist(u):.2f}"
        )

    roles_before = _roles(before, N)
    roles_after = _roles(after, N)
    if report.repairs_fallback == 0:
        # Dominator status: within the certified election halo.
        for u in range(N):
            dom_changed = (roles_before[u] == "dominator") != (
                roles_after[u] == "dominator"
            )
            if dom_changed:
                assert halo_dist(u) <= 3 * RADIUS + 1e-9, (
                    f"dominator flip at node {u}, "
                    f"distance {halo_dist(u):.2f}"
                )
        # Any role change and any incident-LDel change: within the
        # dilated halo.
        ldel_before = _incident(before.ldel_icds_edges, N)
        ldel_after = _incident(after.ldel_icds_edges, N)
        dilated = 10 * RADIUS + 1e-9
        for u in range(N):
            if u == mover:
                continue
            if roles_before[u] != roles_after[u]:
                assert halo_dist(u) <= dilated, (
                    f"role of node {u} changed at distance {halo_dist(u):.2f}"
                )
            if ldel_before[u] != ldel_after[u]:
                assert halo_dist(u) <= dilated, (
                    f"LDel edges of node {u} changed at "
                    f"distance {halo_dist(u):.2f}"
                )
