"""Tests for compass routing and the power model."""

import math

import pytest

from repro.core.power import (
    PowerProfile,
    link_energy,
    power_profile,
    power_saving_ratio,
)
from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.routing.compass import compass_route
from repro.topology.delaunay_udg import delaunay_graph


class TestCompassRoute:
    def test_delivers_on_chain(self):
        pts = [Point(float(i), 0.0) for i in range(5)]
        g = Graph(pts, [(i, i + 1) for i in range(4)])
        result = compass_route(g, 0, 4)
        assert result.delivered and result.hops == 4

    def test_direct_neighbor_shortcut(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 1)]
        g = Graph(pts, [(0, 1), (0, 2), (1, 2)])
        result = compass_route(g, 0, 1)
        assert result.path == (0, 1)

    def test_delivers_on_delaunay_triangulation(self, small_deployments):
        """Kranakis et al.: compass routing succeeds on DTs."""
        for dep in small_deployments[:3]:
            dt = delaunay_graph(list(dep.points))
            n = dt.node_count
            for s, t in [(0, n - 1), (1, n // 2), (n - 1, 0)]:
                if s == t:
                    continue
                result = compass_route(dt, s, t)
                assert result.delivered, f"compass failed {s}->{t} on DT"

    def test_detects_loops(self):
        # A ring with the target in the middle, unreachable: compass
        # circles and must detect the repeated edge.
        pts = [
            Point(math.cos(a), math.sin(a))
            for a in [i * 2 * math.pi / 6 for i in range(6)]
        ] + [Point(0, 0)]
        g = Graph(pts, [(i, (i + 1) % 6) for i in range(6)])
        result = compass_route(g, 0, 6)
        assert not result.delivered
        assert result.reason in ("loop", "stuck")

    def test_stuck_on_isolated_node(self):
        g = Graph([Point(0, 0), Point(5, 5)])
        assert compass_route(g, 0, 1).reason == "stuck"


class TestLinkEnergy:
    def test_energy_is_length_to_alpha(self):
        g = Graph([Point(0, 0), Point(2, 0)], [(0, 1)])
        assert link_energy(g, 0, 1, alpha=2.0) == pytest.approx(4.0)
        assert link_energy(g, 0, 1, alpha=3.0) == pytest.approx(8.0)

    def test_alpha_validated(self):
        g = Graph([Point(0, 0), Point(1, 0)], [(0, 1)])
        with pytest.raises(ValueError):
            link_energy(g, 0, 1, alpha=1.0)
        with pytest.raises(ValueError):
            link_energy(g, 0, 1, alpha=6.0)


class TestPowerProfile:
    def test_node_power_is_longest_link(self):
        pts = [Point(0, 0), Point(1, 0), Point(3, 0)]
        g = Graph(pts, [(0, 1), (1, 2)])
        profile = power_profile(g, alpha=2.0)
        assert profile.node_power[0] == pytest.approx(1.0)
        assert profile.node_power[1] == pytest.approx(4.0)  # 2^2
        assert profile.node_power[2] == pytest.approx(4.0)

    def test_isolated_node_listens_for_free(self):
        g = Graph([Point(0, 0), Point(1, 0), Point(9, 9)], [(0, 1)])
        profile = power_profile(g)
        assert profile.node_power[2] == 0.0

    def test_total_link_energy(self):
        pts = [Point(0, 0), Point(1, 0), Point(3, 0)]
        g = Graph(pts, [(0, 1), (1, 2)])
        profile = power_profile(g, alpha=2.0)
        assert profile.total_link_energy == pytest.approx(1.0 + 4.0)

    def test_aggregates(self):
        profile = PowerProfile(alpha=2.0, node_power=(1.0, 3.0), total_link_energy=4.0)
        assert profile.total_assigned_power == 4.0
        assert profile.max_node_power == 3.0
        assert profile.avg_node_power == 2.0

    def test_empty_graph(self):
        profile = power_profile(Graph([]))
        assert profile.total_assigned_power == 0.0
        assert profile.avg_node_power == 0.0


class TestPowerSavingRatio:
    def test_backbone_saves_power_over_udg(self, deployment, backbone):
        udg = deployment.udg()
        ratio = power_saving_ratio(backbone.ldel_icds_prime, udg, alpha=2.0)
        assert ratio > 1.0, "the sparse spanner should allow lower radio power"

    def test_mismatched_nodes_rejected(self, backbone):
        with pytest.raises(ValueError):
            power_saving_ratio(Graph([Point(0, 0)]), backbone.udg)

    def test_identical_graph_ratio_one(self, deployment):
        udg = deployment.udg()
        assert power_saving_ratio(udg, udg) == pytest.approx(1.0)

    def test_empty_sparse_graph(self):
        pts = [Point(0, 0), Point(1, 0)]
        empty = Graph(pts)
        dense = Graph(pts, [(0, 1)])
        assert power_saving_ratio(empty, dense) == float("inf")
        assert power_saving_ratio(empty, empty) == 1.0