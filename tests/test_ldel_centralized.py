"""Tests for the centralized LDel^k construction and planarization."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.topology.delaunay_udg import unit_delaunay_graph
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import (
    candidate_triangles,
    is_k_localized_delaunay,
    local_delaunay_graph,
    planar_local_delaunay_graph,
    planarize_ldel1,
)


class TestCandidateTriangles:
    def test_single_triangle(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8)]
        udg = UnitDiskGraph(pts, 1.2)
        assert candidate_triangles(udg) == {(0, 1, 2)}

    def test_long_edges_excluded(self):
        # Pairwise distances ~1.4 > radius 1.2: no valid triangle.
        pts = [Point(0, 0), Point(1.4, 0), Point(0.7, 1.2)]
        udg = UnitDiskGraph(pts, 1.3)
        assert candidate_triangles(udg) == set()


class TestKLocalizedProperty:
    def test_rejects_triangle_with_witness_inside(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8), Point(0.5, 0.3)]
        udg = UnitDiskGraph(pts, 1.2)
        assert not is_k_localized_delaunay(udg, (0, 1, 2), 1)

    def test_accepts_clean_triangle(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8)]
        udg = UnitDiskGraph(pts, 1.2)
        assert is_k_localized_delaunay(udg, (0, 1, 2), 1)

    def test_k_must_be_positive(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8)]
        udg = UnitDiskGraph(pts, 1.2)
        with pytest.raises(ValueError):
            local_delaunay_graph(udg, k=0)


class TestLDelStructure:
    def test_contains_gabriel_graph(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            ldel = local_delaunay_graph(udg, k=1)
            assert gabriel_graph(udg).is_subgraph_of(ldel.graph)

    def test_contains_udel(self, small_deployments):
        # UDel triangles have globally empty circumcircles, so every
        # UDel edge survives in LDel^1.
        for dep in small_deployments:
            udg = dep.udg()
            ldel = local_delaunay_graph(udg, k=1)
            assert unit_delaunay_graph(udg).is_subgraph_of(ldel.graph)

    def test_ldel2_subset_of_ldel1(self, small_deployments):
        # Larger k means more witnesses, hence fewer triangles.
        for dep in small_deployments[:3]:
            udg = dep.udg()
            ldel1 = local_delaunay_graph(udg, k=1)
            ldel2 = local_delaunay_graph(udg, k=2)
            assert set(ldel2.triangles) <= set(ldel1.triangles)

    def test_ldel2_is_planar_without_planarization(self, small_deployments):
        # Li et al.: LDel^k is planar for k >= 2.
        for dep in small_deployments[:3]:
            udg = dep.udg()
            ldel2 = local_delaunay_graph(udg, k=2)
            assert is_planar_embedding(ldel2.graph)

    def test_connected(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            assert is_connected(local_delaunay_graph(udg, k=1).graph)


class TestPlanarization:
    def test_planarize_requires_k1(self, small_deployments):
        udg = small_deployments[0].udg()
        ldel2 = local_delaunay_graph(udg, k=2)
        with pytest.raises(ValueError):
            planarize_ldel1(udg, ldel2)

    def test_pldel_is_planar(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            pldel = planar_local_delaunay_graph(udg)
            assert is_planar_embedding(pldel.graph), crossing_report(pldel.graph)

    def test_pldel_is_connected(self, small_deployments):
        for dep in small_deployments:
            assert is_connected(planar_local_delaunay_graph(dep.udg()).graph)

    def test_pldel_still_contains_udel(self, small_deployments):
        # Globally-Delaunay triangles never lose the crossing contest.
        for dep in small_deployments:
            udg = dep.udg()
            pldel = planar_local_delaunay_graph(udg)
            assert unit_delaunay_graph(udg).is_subgraph_of(pldel.graph)

    def test_pldel_subset_of_ldel1(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            ldel1 = local_delaunay_graph(udg, k=1)
            pldel = planarize_ldel1(udg, ldel1)
            assert pldel.graph.is_subgraph_of(ldel1.graph)
            assert set(pldel.triangles) <= set(ldel1.triangles)

    def test_gabriel_edges_survive_planarization(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            pldel = planar_local_delaunay_graph(udg)
            for u, v in pldel.gabriel_edges:
                assert pldel.graph.has_edge(u, v)


def crossing_report(graph):
    from repro.graphs.planarity import crossing_pairs

    return f"crossings: {crossing_pairs(graph)[:5]}"
