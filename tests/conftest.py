"""Shared fixtures: deterministic deployments and prebuilt backbones.

Session-scoped where construction is expensive so the suite stays
fast; everything is seeded, so failures reproduce exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.spanner import BackboneResult, build_backbone
from repro.workloads.generators import Deployment, connected_udg_instance


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def deployment() -> Deployment:
    """A mid-size connected deployment (60 nodes, R=60, 200x200)."""
    return connected_udg_instance(60, 200.0, 60.0, random.Random(7))


@pytest.fixture(scope="session")
def backbone(deployment: Deployment) -> BackboneResult:
    """The full pipeline output for the shared deployment."""
    return build_backbone(deployment.points, deployment.radius)


@pytest.fixture(scope="session")
def small_deployments() -> list[Deployment]:
    """Five small connected deployments for cross-seed property checks."""
    return [
        connected_udg_instance(30, 150.0, 55.0, random.Random(seed))
        for seed in range(5)
    ]
