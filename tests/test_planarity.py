"""Unit tests for repro.graphs.planarity."""

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.planarity import crossing_pairs, is_planar_embedding


def crossing_x():
    """Two edges forming an X (a proper crossing)."""
    pts = [Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)]
    return Graph(pts, [(0, 1), (2, 3)])


class TestIsPlanarEmbedding:
    def test_empty_graph(self):
        assert is_planar_embedding(Graph([]))

    def test_triangle_is_planar(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 2)]
        assert is_planar_embedding(Graph(pts, [(0, 1), (1, 2), (0, 2)]))

    def test_x_crossing_detected(self):
        assert not is_planar_embedding(crossing_x())

    def test_shared_endpoint_is_not_crossing(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 2)]
        g = Graph(pts, [(0, 1), (0, 2)])
        assert is_planar_embedding(g)

    def test_k4_embedded_with_crossing(self):
        # K4 drawn on a square: the two diagonals cross.
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        edges = [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]
        assert not is_planar_embedding(Graph(pts, edges))

    def test_k4_embedded_planar(self):
        # K4 drawn with one vertex inside the triangle: planar drawing.
        pts = [Point(0, 0), Point(4, 0), Point(2, 4), Point(2, 1.3)]
        edges = [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)]
        assert is_planar_embedding(Graph(pts, edges))

    def test_long_edge_short_edge_crossing(self):
        # A long edge spanning many grid cells crossing a short one:
        # exercises the bounding-box bucketing.
        pts = [Point(0, 0), Point(100, 0.5), Point(50, -5), Point(50, 5)]
        g = Graph(pts, [(0, 1), (2, 3)])
        assert not is_planar_embedding(g)


class TestCrossingPairs:
    def test_reports_the_pair(self):
        pairs = crossing_pairs(crossing_x())
        assert len(pairs) == 1
        (e1, e2) = pairs[0]
        assert {e1, e2} == {(0, 1), (2, 3)}

    def test_planar_graph_reports_nothing(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        g = Graph(pts, [(0, 1), (1, 2)])
        assert crossing_pairs(g) == []

    def test_multiple_crossings_counted_once_each(self):
        # A horizontal edge crossed by two separate vertical edges.
        pts = [
            Point(0, 0), Point(10, 0),
            Point(2, -1), Point(2, 1),
            Point(7, -1), Point(7, 1),
        ]
        g = Graph(pts, [(0, 1), (2, 3), (4, 5)])
        assert len(crossing_pairs(g)) == 2
