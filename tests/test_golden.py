"""Golden regression test: one fully pinned instance, exact expectations.

A single seeded deployment run through the whole pipeline with every
structural quantity asserted exactly.  Any behavioural change — a new
tie-break, a different election order, a geometry tweak — shows up
here first, with a precise diff.  Update the constants deliberately
when a change is intended, never to make the suite pass.
"""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.workloads.generators import connected_udg_instance

SEED = 20020701  # ICDCS 2002, July


@pytest.fixture(scope="module")
def golden():
    deployment = connected_udg_instance(50, 200.0, 60.0, random.Random(SEED))
    return build_backbone(deployment.points, deployment.radius)


class TestGoldenStructure:
    def test_udg(self, golden):
        assert golden.udg.edge_count == 292

    def test_roles(self, golden):
        assert sorted(golden.dominators) == [0, 1, 3, 4, 8, 27, 35]
        assert len(golden.connectors) == 21

    def test_graph_sizes(self, golden):
        assert golden.cds.edge_count == 50
        assert golden.cds_prime.edge_count == 86
        assert golden.icds.edge_count == 97
        assert golden.icds_prime.edge_count == 127
        assert golden.ldel_icds.edge_count == 64
        assert golden.ldel_icds_prime.edge_count == 103

    def test_message_ledgers(self, golden):
        assert golden.stats_cds.total == 437
        assert golden.stats_icds.total == 487
        assert golden.stats_ldel.total == 676
        assert golden.stats_ldel.max_per_node() == 33

    def test_message_kinds(self, golden):
        kinds = golden.stats_ldel.by_kind()
        assert kinds["Hello"] == 50
        assert kinds["IamDominator"] == 7
        assert kinds["IamDominatee"] == 71
        assert kinds["TryConnector"] == 237
        assert kinds["IamConnector"] == 72
        assert kinds["Status"] == 50
        assert kinds["Location"] == 28  # one per backbone node
        assert kinds["Proposal"] == 51
        assert kinds["Accept"] == 53
        assert kinds["Reject"] == 1
        assert kinds["Structure"] == 28
        assert kinds["Kept"] == 28
