"""Tests for the distributed (message-passing) routing protocol."""

import random

import pytest

from repro.core.spanner import build_backbone
from repro.graphs.paths import breadth_first_path
from repro.protocols.routing_protocol import DATA, run_routing_protocol
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def clustered_world():
    # Clustered: inter-cluster voids force perimeter mode.
    dep = connected_udg_instance(
        70, 200.0, 55.0, random.Random(13), generator="clustered"
    )
    return dep, build_backbone(dep.points, dep.radius)


class TestDelivery:
    def test_all_pairs_sample_delivered(self, clustered_world):
        dep, result = clustered_world
        n = result.udg.node_count
        packets = [(s, t) for s in range(0, n, 9) for t in range(3, n, 11) if s != t]
        outcomes, _stats = run_routing_protocol(result, packets)
        failures = [(o.source, o.target) for o in outcomes if not o.delivered]
        assert not failures, f"undelivered: {failures[:5]}"

    def test_source_equals_target(self, clustered_world):
        _dep, result = clustered_world
        outcomes, _ = run_routing_protocol(result, [(4, 4)])
        assert outcomes[0].delivered and outcomes[0].path == (4,)

    def test_adjacent_pair_single_frame(self, clustered_world):
        _dep, result = clustered_world
        u, v = next(iter(result.udg.edges()))
        outcomes, stats = run_routing_protocol(result, [(u, v)])
        assert outcomes[0].delivered
        assert outcomes[0].path == (u, v)
        assert stats.per_kind[DATA] == 1


class TestPaths:
    def test_paths_are_radio_walks(self, clustered_world):
        _dep, result = clustered_world
        udg = result.udg
        packets = [(0, udg.node_count - 1), (1, udg.node_count // 2)]
        outcomes, _ = run_routing_protocol(result, packets)
        for outcome in outcomes:
            assert outcome.delivered
            for a, b in zip(outcome.path, outcome.path[1:]):
                assert udg.has_edge(a, b)
            assert outcome.path[0] == outcome.source
            assert outcome.path[-1] == outcome.target

    def test_hop_count_bounded_vs_optimal(self, clustered_world):
        _dep, result = clustered_world
        udg = result.udg
        n = udg.node_count
        packets = [(0, n - 1), (2, n - 3), (5, n // 2)]
        outcomes, _ = run_routing_protocol(result, packets)
        for outcome in outcomes:
            optimal = breadth_first_path(udg, outcome.source, outcome.target).hops
            assert outcome.hops <= 6 * optimal + 10

    def test_transmissions_equal_hops(self, clustered_world):
        _dep, result = clustered_world
        outcomes, stats = run_routing_protocol(
            result, [(0, result.udg.node_count - 1)]
        )
        assert outcomes[0].transmissions == outcomes[0].hops
        assert stats.per_kind[DATA] == outcomes[0].hops


class TestAgainstCentralized:
    def test_matches_backbone_route_delivery(self, clustered_world):
        from repro.routing.backbone_routing import backbone_route

        _dep, result = clustered_world
        n = result.udg.node_count
        pairs = [(s, t) for s in range(0, n, 13) for t in range(1, n, 17) if s != t]
        outcomes, _ = run_routing_protocol(result, pairs)
        for outcome, (s, t) in zip(outcomes, pairs):
            central = backbone_route(result, s, t)
            assert outcome.delivered == central.delivered

    def test_many_packets_one_run(self, clustered_world):
        # The protocol multiplexes: all packets in one network run.
        _dep, result = clustered_world
        n = result.udg.node_count
        packets = [(i, (i + n // 2) % n) for i in range(0, n, 2)]
        outcomes, stats = run_routing_protocol(result, packets)
        delivered = sum(o.delivered for o in outcomes)
        assert delivered == len([p for p in packets if p[0] != p[1]])
        total_hops = sum(o.hops for o in outcomes)
        assert stats.per_kind[DATA] == total_hops
