"""Distance-oracle tests: kernel parity, caching, fallback exactness.

The oracle's contract is that it is *indistinguishable* from the
reference stretch implementation except for speed: the vectorized
kernel must agree with :func:`repro.core.metrics.stretch_reference`
within ``PARITY_RTOL`` (bit-exactly on ``max``/``pairs``/
``unreachable_pairs``), the pure-Python fallback must agree exactly,
and cache hits must never change a result.  Parity is checked over
deployments chosen to stress the geometry: uniform random, a square
lattice (cocircular quadruples), collinear points, and a deployment
with the measured graph cut into components.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.metrics import StretchStats, stretch_reference
from repro.core.oracle import PARITY_RTOL, WEIGHT_KINDS, DistanceOracle, weight_key
from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph
from repro.topology.gabriel import gabriel_graph
from repro.topology.rng import relative_neighborhood_graph

ALPHA = 2.0


def _random_points(n: int, side: float, seed: int) -> list[Point]:
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]


def _deployments() -> dict[str, UnitDiskGraph]:
    """Named deployments that stress distinct kernel paths."""
    grid = [Point(float(x), float(y)) for x in range(5) for y in range(5)]
    line = [Point(float(i), 0.0) for i in range(12)]
    # Two clusters whose UDG is connected by a single bridge node; the
    # RNG below keeps the bridge but sparser rows lose pairs.
    return {
        "random": UnitDiskGraph(_random_points(40, 30.0, 11), 9.0),
        "grid": UnitDiskGraph(grid, 1.5),
        "collinear": UnitDiskGraph(line, 2.0),
    }


def _weight_fn(graph: Graph, kind: str):
    """The reference-side weight callable matching an oracle kind."""
    if kind == "hops":
        return None
    if kind == "length":
        return graph.edge_length
    return lambda u, v: graph.edge_length(u, v) ** ALPHA


def _assert_parity(got: StretchStats, ref: StretchStats) -> None:
    assert got.pairs == ref.pairs
    assert got.unreachable_pairs == ref.unreachable_pairs
    assert got.avg == pytest.approx(ref.avg, rel=PARITY_RTOL, abs=0.0)
    assert got.max == pytest.approx(ref.max, rel=PARITY_RTOL, abs=0.0)


class TestKernelParity:
    @pytest.mark.parametrize("name", ["random", "grid", "collinear"])
    @pytest.mark.parametrize("kind", WEIGHT_KINDS)
    @pytest.mark.parametrize("skip", [False, True])
    def test_matches_reference(self, name, kind, skip):
        udg = _deployments()[name]
        graph = gabriel_graph(udg)
        oracle = DistanceOracle(udg)
        got = oracle.stretch(graph, kind, skip_udg_adjacent=skip, alpha=ALPHA)
        ref = stretch_reference(
            graph, udg, _weight_fn(graph, kind), skip_udg_adjacent=skip
        )
        _assert_parity(got, ref)

    @pytest.mark.parametrize("kind", WEIGHT_KINDS)
    def test_disconnected_measured_graph(self, kind):
        # Baseline-connected deployment whose measured graph is cut in
        # two: drop every edge crossing the middle of a line.
        udg = UnitDiskGraph([Point(float(i), 0.0) for i in range(10)], 2.5)
        cut = Graph(udg.positions)
        for u, v in udg.edge_set():
            if not (u <= 4 < v):
                cut.add_edge(u, v)
        got = DistanceOracle(udg).stretch(cut, kind, alpha=ALPHA)
        ref = stretch_reference(
            cut, udg, _weight_fn(cut, kind), skip_udg_adjacent=False
        )
        _assert_parity(got, ref)
        assert got.unreachable_pairs == ref.unreachable_pairs > 0
        assert math.isinf(got.max_or_inf)

    def test_power_alpha_varies(self):
        udg = _deployments()["random"]
        graph = relative_neighborhood_graph(udg)
        oracle = DistanceOracle(udg)
        for alpha in (2.0, 3.0, 4.5):
            got = oracle.stretch(graph, "power", alpha=alpha)
            ref = stretch_reference(
                graph, udg,
                lambda u, v, a=alpha: graph.edge_length(u, v) ** a,
                skip_udg_adjacent=False,
            )
            _assert_parity(got, ref)


class TestFallbackExactness:
    """No numpy, no scipy: the oracle must equal the reference exactly."""

    @pytest.mark.parametrize("name", ["random", "grid", "collinear"])
    @pytest.mark.parametrize("kind", WEIGHT_KINDS)
    @pytest.mark.parametrize("skip", [False, True])
    def test_bit_identical(self, name, kind, skip):
        udg = _deployments()[name]
        graph = gabriel_graph(udg)
        oracle = DistanceOracle(udg, use_numpy=False, use_scipy=False)
        got = oracle.stretch(graph, kind, skip_udg_adjacent=skip, alpha=ALPHA)
        ref = stretch_reference(
            graph, udg, _weight_fn(graph, kind),
            skip_udg_adjacent=skip, use_scipy=False,
        )
        assert got == ref  # frozen dataclass: field-for-field equality


class TestCaching:
    def test_counters_and_baseline_sharing(self):
        udg = _deployments()["random"]
        gg = gabriel_graph(udg)
        rng_graph = relative_neighborhood_graph(udg)
        oracle = DistanceOracle(udg)
        for graph in (gg, rng_graph):
            for kind in WEIGHT_KINDS:
                oracle.stretch(graph, kind, alpha=ALPHA)
        snap = oracle.snapshot()
        # 2 graphs x 3 kinds + 3 baseline matrices (misses); the second
        # graph's three stretch calls replay the baseline (hits).
        assert snap["counters"]["apsp_misses"] == 9
        assert snap["counters"]["apsp_hits"] == 3
        assert snap["counters"]["stretch_calls"] == 6
        assert snap["entries"] == 9

    def test_baseline_pinned_under_eviction(self):
        udg = _deployments()["random"]
        oracle = DistanceOracle(udg, max_entries=4)
        graphs = [gabriel_graph(udg), relative_neighborhood_graph(udg)]
        for graph in graphs:
            for kind in WEIGHT_KINDS:
                oracle.stretch(graph, kind, alpha=ALPHA)
        assert oracle.counters["evictions"] > 0
        # The UDG baseline matrices never leave the cache: re-running a
        # stretch re-misses the row matrix but not the baseline.
        hits_before = oracle.counters["apsp_hits"]
        oracle.stretch(graphs[0], "length")
        assert oracle.counters["apsp_hits"] == hits_before + 1

    def test_mismatched_node_set_rejected(self):
        udg = _deployments()["random"]
        other = _deployments()["grid"]
        with pytest.raises(ValueError, match="share the node set"):
            DistanceOracle(udg).stretch(gabriel_graph(other), "length")

    def test_mismatched_oracle_rejected_by_metrics(self):
        from repro.core.metrics import length_stretch

        udg = _deployments()["random"]
        other = _deployments()["grid"]
        with pytest.raises(ValueError, match="different baseline"):
            length_stretch(
                gabriel_graph(other), other, oracle=DistanceOracle(udg)
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown weight kind"):
            weight_key("euclidean")

    def test_alpha_below_one_rejected(self):
        udg = _deployments()["collinear"]
        with pytest.raises(ValueError, match="alpha"):
            DistanceOracle(udg).stretch(udg, "power", alpha=0.5)


_hypothesis_points = st.lists(
    st.tuples(st.integers(0, 16), st.integers(0, 16)),
    min_size=4,
    max_size=18,
    unique=True,
).map(lambda pts: [Point(x / 2.0, y / 2.0) for x, y in pts])


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_hypothesis_points, st.sampled_from(WEIGHT_KINDS))
def test_cache_hits_never_change_results(points, kind):
    """Property: a warm stretch equals the cold one, field for field."""
    udg = UnitDiskGraph(points, 3.0)
    graph = gabriel_graph(udg)
    oracle = DistanceOracle(udg)
    cold = oracle.stretch(graph, kind, alpha=ALPHA)
    misses_after_cold = oracle.counters["apsp_misses"]
    warm = oracle.stretch(graph, kind, alpha=ALPHA)
    assert warm == cold
    # The warm call was answered from cache, not recomputed.
    assert oracle.counters["apsp_misses"] == misses_after_cold
    assert oracle.counters["apsp_hits"] >= 2
