"""Unit tests for repro.geometry.primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.primitives import (
    Point,
    angle_at,
    as_points,
    dist,
    dist_sq,
    midpoint,
    polygon_area,
)

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_unpacks_like_a_pair(self):
        x, y = Point(1.5, -2.0)
        assert (x, y) == (1.5, -2.0)

    def test_hashable_by_value(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1

    def test_add_and_sub(self):
        p = Point(1.0, 2.0) + Point(3.0, 4.0)
        assert p == Point(4.0, 6.0)
        assert Point(4.0, 6.0) - Point(3.0, 4.0) == Point(1.0, 2.0)

    def test_scaled(self):
        assert Point(2.0, -3.0).scaled(2.0) == Point(4.0, -6.0)

    def test_translated(self):
        assert Point(1.0, 1.0).translated(0.5, -0.5) == Point(1.5, 0.5)


class TestDistances:
    def test_dist_matches_pythagoras(self):
        assert dist(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_dist_sq_avoids_sqrt(self):
        assert dist_sq(Point(0, 0), Point(3, 4)) == pytest.approx(25.0)

    def test_zero_distance(self):
        p = Point(2.5, -1.0)
        assert dist(p, p) == 0.0

    @given(points, points)
    def test_symmetry(self, p, q):
        assert dist(p, q) == dist(q, p)

    @given(points, points, points)
    def test_triangle_inequality(self, p, q, r):
        assert dist(p, r) <= dist(p, q) + dist(q, r) + 1e-6

    @given(points, points)
    def test_dist_sq_consistent_with_dist(self, p, q):
        assert math.sqrt(dist_sq(p, q)) == pytest.approx(dist(p, q), abs=1e-6)


class TestMidpoint:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    @given(points, points)
    def test_midpoint_equidistant(self, p, q):
        m = midpoint(p, q)
        assert dist(m, p) == pytest.approx(dist(m, q), rel=1e-9, abs=1e-6)


class TestAngleAt:
    def test_right_angle(self):
        ang = angle_at(Point(0, 0), Point(1, 0), Point(0, 1))
        assert ang == pytest.approx(math.pi / 2)

    def test_straight_angle(self):
        ang = angle_at(Point(0, 0), Point(1, 0), Point(-1, 0))
        assert ang == pytest.approx(math.pi)

    def test_zero_angle(self):
        ang = angle_at(Point(0, 0), Point(1, 1), Point(2, 2))
        assert ang == pytest.approx(0.0, abs=1e-6)

    def test_degenerate_arm_raises(self):
        apex = Point(1, 1)
        with pytest.raises(ValueError):
            angle_at(apex, apex, Point(2, 2))

    def test_clamps_rounding_noise(self):
        # Nearly-collinear arms whose cosine can exceed 1 by rounding.
        ang = angle_at(Point(0, 0), Point(1e8, 1e-8), Point(2e8, 2e-8))
        assert 0.0 <= ang <= math.pi


class TestPolygonArea:
    def test_unit_square_ccw(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert polygon_area(square) == pytest.approx(1.0)

    def test_clockwise_is_negative(self):
        square = [Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)]
        assert polygon_area(square) == pytest.approx(-1.0)

    def test_triangle(self):
        tri = [Point(0, 0), Point(2, 0), Point(0, 2)]
        assert polygon_area(tri) == pytest.approx(2.0)


class TestAsPoints:
    def test_converts_raw_pairs(self):
        pts = as_points([(1, 2), (3.5, 4.5)])
        assert pts == [Point(1.0, 2.0), Point(3.5, 4.5)]
        assert all(isinstance(p, Point) for p in pts)
