"""Tests for geometric transforms (with structure-invariance properties)
and the k-NN baseline."""

import math
import random

import pytest

from repro.geometry.primitives import Point, dist
from repro.geometry.transforms import (
    mirror_x,
    normalize_to_unit_square,
    rotate,
    scale,
    translate,
)
from repro.graphs.paths import is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.topology.gabriel import gabriel_graph
from repro.topology.knn import knn_graph
from repro.topology.rng import relative_neighborhood_graph


class TestTransformBasics:
    def test_translate(self):
        assert translate([Point(1, 2)], 3, -1) == [Point(4, 1)]

    def test_rotate_quarter_turn(self):
        (p,) = rotate([Point(1, 0)], math.pi / 2)
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_rotate_about_center(self):
        (p,) = rotate([Point(2, 1)], math.pi, about=Point(1, 1))
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_scale(self):
        (p,) = scale([Point(2, 4)], 0.5)
        assert p == Point(1.0, 2.0)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scale([Point(0, 0)], 0.0)

    def test_mirror(self):
        assert mirror_x([Point(1, 3)], axis_y=1.0) == [Point(1, -1)]

    def test_rigid_motions_preserve_distances(self, rng):
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(8)]
        moved = rotate(translate(pts, 5, -3), 0.7, about=Point(2, 2))
        for i in range(8):
            for j in range(i + 1, 8):
                assert dist(pts[i], pts[j]) == pytest.approx(
                    dist(moved[i], moved[j]), rel=1e-9
                )

    def test_normalize_to_unit_square(self):
        pts = [Point(10, 10), Point(30, 20)]
        norm = normalize_to_unit_square(pts)
        assert norm[0] == Point(0.0, 0.0)
        assert norm[1] == Point(1.0, 0.5)

    def test_normalize_degenerate(self):
        assert normalize_to_unit_square([Point(5, 5)] * 3) == [Point(0, 0)] * 3
        assert normalize_to_unit_square([]) == []


class TestStructureInvariance:
    """Constructions must be equivariant under rigid motions/scalings."""

    @pytest.fixture(scope="class")
    def world(self):
        rng = random.Random(41)
        pts = [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(40)]
        return pts

    @pytest.mark.parametrize(
        "transform",
        [
            lambda pts: translate(pts, 37.5, -12.25),
            lambda pts: rotate(pts, 1.234, about=Point(50, 50)),
            lambda pts: mirror_x(pts, axis_y=50.0),
        ],
        ids=["translate", "rotate", "mirror"],
    )
    def test_rigid_motion_invariance(self, world, transform):
        radius = 30.0
        base_udg = UnitDiskGraph(world, radius)
        moved_udg = UnitDiskGraph(transform(world), radius)
        assert base_udg.edge_set() == moved_udg.edge_set()
        assert gabriel_graph(base_udg).edge_set() == gabriel_graph(
            moved_udg
        ).edge_set()
        assert relative_neighborhood_graph(base_udg).edge_set() == (
            relative_neighborhood_graph(moved_udg).edge_set()
        )

    def test_scaling_equivariance(self, world):
        # Scaling positions AND radius by the same factor preserves
        # every structure.
        base_udg = UnitDiskGraph(world, 30.0)
        scaled_udg = UnitDiskGraph(scale(world, 2.5), 75.0)
        assert base_udg.edge_set() == scaled_udg.edge_set()
        assert gabriel_graph(base_udg).edge_set() == gabriel_graph(
            scaled_udg
        ).edge_set()

    def test_backbone_invariant_under_translation(self, world):
        from repro.core.spanner import build_backbone

        base = build_backbone(world, 30.0)
        moved = build_backbone(translate(world, 11.0, 7.0), 30.0)
        assert base.dominators == moved.dominators
        assert base.ldel_icds.edge_set() == moved.ldel_icds.edge_set()


class TestKnnGraph:
    def test_k_validated(self, deployment):
        with pytest.raises(ValueError):
            knn_graph(deployment.udg(), 0)

    def test_subgraph_of_udg(self, deployment):
        udg = deployment.udg()
        assert knn_graph(udg, 3).is_subgraph_of(udg)

    def test_each_node_keeps_k_nearest(self):
        pts = [Point(0, 0), Point(1, 0), Point(2.1, 0), Point(3.5, 0)]
        udg = UnitDiskGraph(pts, 5.0)
        g = knn_graph(udg, 1)
        # 0 chooses 1; 1 chooses 0; 2 chooses 1; 3 chooses 2.
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(2, 3)

    def test_monotone_in_k(self, deployment):
        udg = deployment.udg()
        assert knn_graph(udg, 2).is_subgraph_of(knn_graph(udg, 4))

    def test_small_k_can_disconnect(self):
        # Two pairs far apart within radio range of each other only
        # via long links: k=1 keeps each node's nearest only.
        pts = [Point(0, 0), Point(0.1, 0), Point(3, 0), Point(3.1, 0)]
        udg = UnitDiskGraph(pts, 4.0)
        assert is_connected(udg)
        g1 = knn_graph(udg, 1)
        assert not is_connected(g1)

    def test_sufficient_k_connects(self, small_deployments):
        # With k near the average degree the symmetrized k-NN graph is
        # connected on these instances.
        for dep in small_deployments:
            udg = dep.udg()
            k = max(3, round(2 * udg.edge_count / udg.node_count))
            assert is_connected(knn_graph(udg, k))
