"""Tests for repro.core.metrics."""

import math

import pytest

from repro.core.metrics import (
    StretchStats,
    degree_stats,
    hop_stretch,
    length_stretch,
    measure_topology,
    power_stretch,
)
from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.udg import UnitDiskGraph


def square_udg():
    """Four corners of a unit-ish square, all pairs within radius."""
    pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
    return UnitDiskGraph(pts, 2.0)  # complete graph


class TestDegreeStats:
    def test_empty(self):
        assert degree_stats(Graph([])) == (0.0, 0)

    def test_star(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1), Point(-1, 0)]
        g = Graph(pts, [(0, 1), (0, 2), (0, 3)])
        avg, mx = degree_stats(g)
        assert avg == pytest.approx(1.5)
        assert mx == 3


class TestLengthStretch:
    def test_identity_graph_has_stretch_one(self):
        udg = square_udg()
        stats = length_stretch(udg, udg)
        assert stats.avg == pytest.approx(1.0)
        assert stats.max == pytest.approx(1.0)
        assert stats.pairs == 6

    def test_cycle_subgraph_stretch(self):
        udg = square_udg()
        ring = Graph(udg.positions, [(0, 1), (1, 2), (2, 3), (0, 3)])
        stats = length_stretch(ring, udg)
        # Diagonal pairs: ring distance 2 vs direct sqrt(2).
        assert stats.max == pytest.approx(2.0 / math.sqrt(2.0))

    def test_skip_udg_adjacent(self):
        udg = square_udg()
        ring = Graph(udg.positions, [(0, 1), (1, 2), (2, 3), (0, 3)])
        stats = length_stretch(ring, udg, skip_udg_adjacent=True)
        # All pairs are UDG-adjacent in the complete graph: none left.
        assert stats.pairs == 0
        assert stats == StretchStats.empty()

    def test_disconnected_measured_graph_counts_unreachable(self):
        # Pairs cut in the measured graph no longer poison avg with
        # inf: they are excluded and tallied in unreachable_pairs, and
        # the "infinite stretch" view survives via max_or_inf.
        udg = square_udg()
        broken = Graph(udg.positions, [(0, 1)])
        stats = length_stretch(broken, udg)
        assert stats.pairs == 1  # only (0, 1) is still connected
        assert stats.unreachable_pairs == 5
        assert stats.disconnected
        assert math.isfinite(stats.avg) and math.isfinite(stats.max)
        assert stats.max_or_inf == math.inf

    def test_connected_graph_has_no_unreachable_pairs(self):
        udg = square_udg()
        stats = length_stretch(udg, udg)
        assert stats.unreachable_pairs == 0
        assert not stats.disconnected
        assert stats.max_or_inf == stats.max

    def test_mismatched_node_sets_rejected(self):
        udg = square_udg()
        other = Graph([Point(0, 0)])
        with pytest.raises(ValueError):
            length_stretch(other, udg)


class TestHopStretch:
    def test_chain_vs_shortcut(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 2.5)  # complete
        chain = Graph(pts, [(0, 1), (1, 2)])
        stats = hop_stretch(chain, udg)
        # Pair (0,2): 2 hops vs 1.
        assert stats.max == pytest.approx(2.0)

    def test_identity_hop_stretch(self):
        udg = square_udg()
        assert hop_stretch(udg, udg).max == pytest.approx(1.0)


class TestPowerStretch:
    def test_relay_matches_udg_optimum_in_power(self):
        # Power metric (alpha=2): the UDG's optimal power path also
        # relays through the middle node (cost 1+1=2, not 4), so the
        # chain — which drops the long direct edge — has stretch 1.
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 2.5)
        chain = Graph(pts, [(0, 1), (1, 2)])
        stats = power_stretch(chain, udg, alpha=2.0)
        assert stats.max == pytest.approx(1.0)
        assert stats.avg == pytest.approx(1.0)

    def test_alpha_below_one_rejected(self):
        udg = square_udg()
        with pytest.raises(ValueError):
            power_stretch(udg, udg, alpha=0.5)

    def test_backbone_power_stretch_is_finite(self, deployment, backbone):
        stats = power_stretch(
            backbone.ldel_icds_prime, backbone.udg, alpha=2.0,
            skip_udg_adjacent=True,
        )
        assert 0.0 < stats.avg < 10.0


class TestMeasureTopology:
    def test_full_measurement(self):
        udg = square_udg()
        metrics = measure_topology(udg, udg, power_alpha=2.0)
        assert metrics.name == "UDG"
        assert metrics.edge_count == 6
        assert metrics.length is not None and metrics.length.avg == pytest.approx(1.0)
        assert metrics.hops is not None
        assert metrics.power is not None

    def test_stretch_disabled(self):
        udg = square_udg()
        metrics = measure_topology(udg, udg, stretch=False)
        assert metrics.length is None and metrics.hops is None

    def test_agrees_with_pure_python_fallback(self, deployment):
        # Force the pure-Python APSP path and compare with scipy's.
        import repro.core.metrics as metrics_mod

        udg = deployment.udg()
        from repro.topology.gabriel import gabriel_graph

        gg = gabriel_graph(udg)
        fast = length_stretch(gg, udg)
        have_scipy = metrics_mod._HAVE_SCIPY
        metrics_mod._HAVE_SCIPY = False
        try:
            slow = length_stretch(gg, udg)
        finally:
            metrics_mod._HAVE_SCIPY = have_scipy
        assert fast.avg == pytest.approx(slow.avg, rel=1e-9)
        assert fast.max == pytest.approx(slow.max, rel=1e-9)
        assert fast.pairs == slow.pairs
