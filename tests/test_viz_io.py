"""Tests for SVG rendering and JSON serialization."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.viz.svg import render_backbone_svg, render_topology_svg
from repro.workloads.io import (
    deployment_from_dict,
    deployment_to_dict,
    graph_from_dict,
    load_deployment,
    load_graph,
    save_deployment,
    save_graph,
)


class TestRenderTopologySvg:
    def triangle(self):
        pts = [Point(0, 0), Point(100, 0), Point(50, 80)]
        return Graph(pts, [(0, 1), (1, 2), (0, 2)], name="tri")

    def test_valid_xml(self):
        svg = render_topology_svg(self.triangle())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_edges_and_nodes(self):
        svg = render_topology_svg(self.triangle())
        assert svg.count("<line") == 3
        assert svg.count("<circle") == 3

    def test_title_defaults_to_graph_name(self):
        svg = render_topology_svg(self.triangle())
        assert "<title>tri</title>" in svg

    def test_roles_change_shapes(self):
        svg = render_topology_svg(
            self.triangle(),
            roles={0: "dominator", 1: "connector", 2: "dominatee"},
        )
        # Two squares (dominator + connector), one role circle.
        assert svg.count("<rect") == 3  # background + 2 squares
        assert svg.count("<circle") == 1

    def test_y_axis_flipped(self):
        # The highest node (y=80) must get the smallest SVG y.
        svg = render_topology_svg(self.triangle())
        circles = [
            line for line in svg.splitlines() if line.startswith("<circle")
        ]
        ys = [float(c.split('cy="')[1].split('"')[0]) for c in circles]
        assert ys[2] == min(ys)


class TestRenderBackboneSvg:
    def test_renders_every_known_graph(self, backbone):
        for which in ("cds", "icds", "ldel_icds", "ldel_icds_prime"):
            svg = render_backbone_svg(backbone, which=which)
            ET.fromstring(svg)
            assert "<line" in svg

    def test_unknown_graph_rejected(self, backbone):
        with pytest.raises(ValueError):
            render_backbone_svg(backbone, which="positions")

    def test_role_shapes_present(self, backbone):
        svg = render_backbone_svg(backbone)
        # squares for backbone nodes + the background rect.
        assert svg.count("<rect") == len(backbone.backbone_nodes) + 1
        assert svg.count("<circle") == len(backbone.dominatees)


class TestDeploymentIo:
    def test_round_trip_dict(self, deployment):
        data = deployment_to_dict(deployment)
        restored = deployment_from_dict(data)
        assert restored == deployment

    def test_round_trip_file(self, deployment, tmp_path):
        path = tmp_path / "dep.json"
        save_deployment(deployment, path)
        assert load_deployment(path) == deployment

    def test_json_serializable(self, deployment):
        text = json.dumps(deployment_to_dict(deployment))
        assert deployment_from_dict(json.loads(text)) == deployment

    def test_schema_validated(self):
        with pytest.raises(ValueError):
            deployment_from_dict({"schema": "bogus", "points": []})


class TestGraphIo:
    def test_round_trip(self, backbone, tmp_path):
        graph = backbone.ldel_icds
        path = tmp_path / "graph.json"
        save_graph(graph, path)
        restored = load_graph(path)
        assert restored.edge_set() == graph.edge_set()
        assert restored.positions == graph.positions
        assert restored.name == graph.name

    def test_schema_validated(self):
        with pytest.raises(ValueError):
            graph_from_dict({"schema": "repro/deployment/v1"})

    def test_graph_from_dict_casts_types(self):
        data = {
            "schema": "repro/graph/v1",
            "name": "g",
            "positions": [[0, 0], [1, 1]],
            "edges": [[0, 1]],
        }
        graph = graph_from_dict(data)
        assert graph.has_edge(0, 1)
        assert isinstance(graph.positions[0], Point)
