"""Unit tests for repro.geometry.circle."""

import math

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry.circle import (
    Circle,
    circumcircle,
    disk_contains,
    gabriel_disk_empty,
    lune_contains,
    point_in_circumcircle,
)
from repro.geometry.predicates import Orientation, orientation
from repro.geometry.primitives import Point, dist

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestCircle:
    def test_contains_center(self):
        assert Circle(Point(0, 0), 1.0).contains(Point(0, 0))

    def test_boundary_is_outside(self):
        # Open-disk semantics: boundary points do not count.
        assert not Circle(Point(0, 0), 1.0).contains(Point(1, 0))

    def test_tiny_circle_contains_nothing(self):
        assert not Circle(Point(0, 0), 1e-12).contains(Point(0, 0))


class TestCircumcircle:
    def test_right_triangle(self):
        # Circumcenter of a right triangle is the hypotenuse midpoint.
        circle = circumcircle(Point(0, 0), Point(2, 0), Point(0, 2))
        assert circle is not None
        assert circle.center == pytest.approx((1.0, 1.0))
        assert circle.radius == pytest.approx(math.sqrt(2))

    def test_equilateral(self):
        circle = circumcircle(Point(0, 0), Point(1, 0), Point(0.5, math.sqrt(3) / 2))
        assert circle is not None
        assert circle.radius == pytest.approx(1 / math.sqrt(3))

    def test_collinear_returns_none(self):
        assert circumcircle(Point(0, 0), Point(1, 1), Point(2, 2)) is None

    @given(points, points, points)
    def test_vertices_equidistant_from_center(self, a, b, c):
        assume(orientation(a, b, c) != Orientation.COLLINEAR)
        circle = circumcircle(a, b, c)
        assume(circle is not None)
        for p in (a, b, c):
            assert dist(circle.center, p) == pytest.approx(
                circle.radius, rel=1e-6, abs=1e-6
            )


class TestPointInCircumcircle:
    def test_inside(self):
        assert point_in_circumcircle(
            Point(0, 0), Point(2, 0), Point(0, 2), Point(0.8, 0.8)
        )

    def test_outside(self):
        assert not point_in_circumcircle(
            Point(0, 0), Point(2, 0), Point(0, 2), Point(5, 5)
        )

    def test_orientation_independent(self):
        args_ccw = (Point(0, 0), Point(2, 0), Point(0, 2), Point(0.8, 0.8))
        args_cw = (Point(0, 0), Point(0, 2), Point(2, 0), Point(0.8, 0.8))
        assert point_in_circumcircle(*args_ccw) == point_in_circumcircle(*args_cw)

    def test_degenerate_triangle_contains_nothing(self):
        assert not point_in_circumcircle(
            Point(0, 0), Point(1, 1), Point(2, 2), Point(0, 1)
        )

    @given(points, points, points, points)
    def test_agrees_with_explicit_circumcircle(self, a, b, c, d):
        assume(orientation(a, b, c) != Orientation.COLLINEAR)
        circle = circumcircle(a, b, c)
        assume(circle is not None and circle.radius < 1e4)
        # Skip knife-edge cases where the two formulations may differ.
        margin = abs(dist(circle.center, d) - circle.radius)
        assume(margin > 1e-6 * max(circle.radius, 1.0))
        assert point_in_circumcircle(a, b, c, d) == circle.contains(d)


class TestDiskContains:
    def test_strictly_inside(self):
        assert disk_contains(Point(0, 0), 2.0, Point(1, 0))

    def test_boundary_excluded(self):
        assert not disk_contains(Point(0, 0), 2.0, Point(2, 0))

    def test_nonpositive_radius(self):
        assert not disk_contains(Point(0, 0), 0.0, Point(0, 0))


class TestGabrielDiskEmpty:
    def test_empty_when_no_witnesses(self):
        assert gabriel_disk_empty(Point(0, 0), Point(2, 0), [])

    def test_blocked_by_midpoint_witness(self):
        assert not gabriel_disk_empty(Point(0, 0), Point(2, 0), [Point(1, 0.1)])

    def test_endpoints_never_block(self):
        u, v = Point(0, 0), Point(2, 0)
        assert gabriel_disk_empty(u, v, [u, v])

    def test_witness_outside_disk(self):
        # (1, 1.01) is just outside the radius-1 disk centered at (1, 0).
        assert gabriel_disk_empty(Point(0, 0), Point(2, 0), [Point(1, 1.01)])

    @given(points, points, st.lists(points, max_size=8))
    def test_blocker_must_be_near_both_endpoints(self, u, v, witnesses):
        assume(u != v)
        if not gabriel_disk_empty(u, v, witnesses):
            d_uv = dist(u, v)
            assert any(
                dist(u, w) <= d_uv and dist(v, w) <= d_uv
                for w in witnesses
                if w not in (u, v)
            )


class TestLuneContains:
    def test_midpoint_in_lune(self):
        assert lune_contains(Point(0, 0), Point(2, 0), Point(1, 0.2))

    def test_gabriel_disk_point_outside_lune(self):
        # Inside the diameter disk but outside the lune (close to u).
        u, v, w = Point(0, 0), Point(2, 0), Point(0.1, 0.05)
        assert not gabriel_disk_empty(u, v, [w]) or True  # sanity setup
        assert not lune_contains(u, v, w) or dist(v, w) < dist(u, v)

    def test_lune_is_subset_of_gabriel_disk_region(self):
        # Every point in the lune blocks the RNG edge; such a point also
        # has both endpoint distances below |uv| by definition.
        u, v = Point(0, 0), Point(2, 0)
        w = Point(1.0, 0.5)
        assert lune_contains(u, v, w)
        assert dist(u, w) < dist(u, v) and dist(v, w) < dist(u, v)
