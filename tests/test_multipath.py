"""Tests for disjoint multipath routing."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.routing.multipath import (
    disjoint_paths,
    route_survives,
    survivable_pairs,
)


def diamond():
    """Two node-disjoint routes 0 -> 3: via 1 and via 2."""
    pts = [Point(0, 0), Point(1, 1), Point(1, -1), Point(2, 0)]
    return Graph(pts, [(0, 1), (1, 3), (0, 2), (2, 3)])


def path_graph(n):
    pts = [Point(float(i), 0.0) for i in range(n)]
    return Graph(pts, [(i, i + 1) for i in range(n - 1)])


class TestDisjointPaths:
    def test_diamond_has_two(self):
        result = disjoint_paths(diamond(), 0, 3, k=2)
        assert result.count == 2
        assert result.survivable
        interiors = [set(p[1:-1]) for p in result.paths]
        assert interiors[0].isdisjoint(interiors[1])

    def test_chain_has_one(self):
        result = disjoint_paths(path_graph(5), 0, 4, k=3)
        assert result.count == 1
        assert not result.survivable

    def test_no_path(self):
        g = Graph([Point(0, 0), Point(9, 9)])
        result = disjoint_paths(g, 0, 1)
        assert result.count == 0

    def test_source_equals_target(self):
        result = disjoint_paths(diamond(), 2, 2)
        assert result.paths == ((2,),)

    def test_direct_edge_plus_detour(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 1)]
        g = Graph(pts, [(0, 1), (0, 2), (1, 2)])
        result = disjoint_paths(g, 0, 1, k=2)
        assert result.count == 2
        assert (0, 1) in result.paths

    def test_k_validated(self):
        with pytest.raises(ValueError):
            disjoint_paths(diamond(), 0, 3, k=0)

    def test_paths_sorted_shortest_first(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 1), Point(1.5, 1), Point(2, 0)]
        g = Graph(pts, [(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)])
        result = disjoint_paths(g, 0, 4, k=2)
        assert len(result.paths[0]) <= len(result.paths[1])


class TestRouteSurvives:
    def test_diamond_survives_any_single_interior_failure(self):
        g = diamond()
        result = disjoint_paths(g, 0, 3, k=2)
        for victim in (1, 2):
            assert route_survives(g, result, victim)

    def test_chain_does_not_survive(self):
        g = path_graph(4)
        result = disjoint_paths(g, 0, 3, k=2)
        assert not route_survives(g, result, 1)


class TestSurvivablePairs:
    def test_cycle_fully_survivable(self):
        pts = [Point(float(i), float(i % 2)) for i in range(6)]
        ring = Graph(pts, [(i, (i + 1) % 6) for i in range(6)])
        good, total = survivable_pairs(ring, list(range(6)))
        assert good == total == 15

    def test_chain_not_survivable(self):
        g = path_graph(5)
        good, total = survivable_pairs(g, list(range(5)))
        assert good == 0 and total == 10

    def test_backbone_survivability_fraction(self, backbone):
        members = sorted(backbone.backbone_nodes)
        good, total = survivable_pairs(
            backbone.icds, members, sample_stride=3
        )
        assert total > 0
        # ICDS keeps all UDG links among members: a solid majority of
        # pairs should enjoy 2-path survivability on this instance.
        assert good / total > 0.5
