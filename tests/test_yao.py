"""Tests for the Yao graph and the Yao-and-Sink structure."""

import math

import pytest

from repro.core.metrics import length_stretch
from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.udg import UnitDiskGraph
from repro.topology.yao import yao_cone_of, yao_edges_out, yao_graph
from repro.topology.yao_sink import yao_sink_graph


class TestYaoConeOf:
    def test_cone_zero_contains_positive_x_axis(self):
        assert yao_cone_of(1.0, 0.0, 6) == 0

    def test_cones_partition_the_circle(self):
        k = 6
        seen = set()
        for i in range(360):
            angle = math.radians(i + 0.5)
            seen.add(yao_cone_of(math.cos(angle), math.sin(angle), k))
        assert seen == set(range(k))

    def test_negative_angle_wraps(self):
        cone = yao_cone_of(1.0, -0.01, 6)
        assert cone == 5


class TestYaoGraph:
    def test_needs_three_cones(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 2.0)
        with pytest.raises(ValueError):
            yao_graph(udg, k=2)

    def test_keeps_shortest_edge_per_cone(self):
        # Two neighbors in the same cone: only the nearer is chosen.
        pts = [Point(0, 0), Point(1, 0.05), Point(2, 0.0)]
        udg = UnitDiskGraph(pts, 3.0)
        out = yao_edges_out(udg, 0, 6)
        assert 1 in out and 2 not in out

    def test_union_is_undirected_superset(self):
        # Even if u does not choose v, v may choose u: edge present.
        pts = [Point(0, 0), Point(1, 0.05), Point(2, 0.0)]
        udg = UnitDiskGraph(pts, 3.0)
        yao = yao_graph(udg, 6)
        # 2 chooses 1 (nearest in its cone), 1 chooses both sides.
        assert yao.has_edge(1, 2)

    def test_connected_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            assert is_connected(yao_graph(dep.udg(), 6))

    def test_out_degree_bounded_by_k(self, deployment):
        udg = deployment.udg()
        k = 6
        for u in udg.nodes():
            assert len(yao_edges_out(udg, u, k)) <= k

    def test_length_spanner_on_random_instances(self, small_deployments):
        # Theoretical bound for k=6: 1/(1 - 2 sin(pi/6)) is unbounded,
        # so use k=8 where the bound is 1/(1-2 sin(pi/8)) ~ 4.26.
        bound = 1.0 / (1.0 - 2.0 * math.sin(math.pi / 8.0))
        for dep in small_deployments:
            udg = dep.udg()
            stats = length_stretch(yao_graph(udg, 8), udg)
            assert stats.max <= bound + 1e-9


class TestYaoSink:
    def test_needs_three_cones(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 2.0)
        with pytest.raises(ValueError):
            yao_sink_graph(udg, k=2)

    def test_connected_on_random_instances(self, small_deployments):
        for dep in small_deployments:
            assert is_connected(yao_sink_graph(dep.udg(), 6))

    def test_star_in_degree_is_rewired(self):
        # A hub with many spokes: in the Yao graph the hub's in-degree
        # equals the spoke count; the sink tree must cap its degree.
        n_spokes = 24
        pts = [Point(0, 0)] + [
            Point(
                math.cos(2 * math.pi * i / n_spokes),
                math.sin(2 * math.pi * i / n_spokes),
            )
            for i in range(n_spokes)
        ]
        udg = UnitDiskGraph(pts, 1.05)
        k = 6
        yao = yao_graph(udg, k)
        sink = yao_sink_graph(udg, k)
        assert is_connected(sink)
        assert sink.degree(0) < yao.degree(0)

    def test_degree_bound_on_random_instances(self, small_deployments):
        # YG*_k has degree at most (k+1)^2 - 1 (Li et al.); check a
        # slightly looser bound to stay robust to tie-breaking.
        k = 6
        for dep in small_deployments:
            sink = yao_sink_graph(dep.udg(), k)
            assert max(sink.degrees()) <= (k + 1) ** 2
