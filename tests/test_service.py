"""Unit tests for the service subsystem: registry, cache, executor, metrics."""


import pytest

from repro.service.cache import ResultCache, scenario_key
from repro.service.executor import run_batch
from repro.service.metrics import LatencyHistogram, MetricsRegistry, percentile
from repro.service.registry import (
    RegistryError,
    available_pipelines,
    build_scenario,
    get_pipeline,
    resolve_scenario,
)
from repro.topology.gabriel import gabriel_graph

SCENARIO = {"nodes": 25, "side": 150.0, "radius": 55.0, "seed": 3}


class TestRegistry:
    def test_every_pipeline_listed(self):
        names = {entry["name"] for entry in available_pipelines()}
        assert {"udg", "gg", "rng", "ldel", "backbone", "cds", "icds"} <= names

    def test_unknown_pipeline(self):
        with pytest.raises(RegistryError, match="unknown pipeline"):
            get_pipeline("does-not-exist")

    def test_param_defaults_canonicalize(self):
        spec = get_pipeline("yao")
        assert spec.canonicalize(None) == {"k": 6, "measure": False}
        assert spec.canonicalize({"k": 8}) == {"k": 8, "measure": False}

    def test_measured_build_ships_metrics_and_oracle_extras(self):
        product = build_scenario("gg", SCENARIO, {"measure": True})
        metrics = product.extras["metrics"]
        assert metrics["length_stretch"]["avg"] >= 1.0
        assert metrics["hop_stretch"]["pairs"] > 0
        assert metrics["power_stretch"] is not None
        oracle = product.extras["oracle"]
        # One UDG baseline + one measured graph, three weight kinds
        # each: 6 misses, and the baseline matrices are reused.
        assert oracle["counters"]["apsp_misses"] == 6
        assert oracle["counters"]["stretch_calls"] == 3
        assert set(oracle["seconds"]) == {"snapshot", "apsp", "kernel"}
        bare = build_scenario("gg", SCENARIO)
        assert "metrics" not in bare.extras and "oracle" not in bare.extras

    def test_unknown_param_rejected(self):
        with pytest.raises(RegistryError, match="no parameter"):
            get_pipeline("gg").canonicalize({"k": 3})

    def test_bad_param_type_rejected(self):
        with pytest.raises(RegistryError, match="expects int"):
            get_pipeline("yao").canonicalize({"k": "six"})

    def test_bad_choice_rejected(self):
        with pytest.raises(RegistryError, match="must be one of"):
            get_pipeline("backbone").canonicalize({"election": "coin-flip"})

    def test_gg_matches_library(self):
        product = build_scenario("gg", SCENARIO)
        deployment = resolve_scenario(SCENARIO)
        expected = gabriel_graph(deployment.udg())
        assert product.graph.edge_set() == expected.edge_set()

    def test_backbone_product_is_routable(self):
        product = build_scenario("backbone", SCENARIO)
        assert product.backbone is not None
        assert product.graph.edge_set() == product.backbone.ldel_icds.edge_set()

    def test_flat_product_is_not_routable(self):
        assert build_scenario("rng", SCENARIO).backbone is None


class TestScenarioResolution:
    def test_generator_is_deterministic(self):
        a = resolve_scenario(SCENARIO)
        b = resolve_scenario(SCENARIO)
        assert a.points == b.points

    def test_explicit_points(self):
        deployment = resolve_scenario(
            {"points": [[0, 0], [1, 0], [0.5, 1]], "radius": 2.0}
        )
        assert len(deployment.points) == 3
        assert deployment.radius == 2.0

    def test_corpus_reference(self):
        deployment = resolve_scenario({"corpus": "paper-sparse/0"})
        assert len(deployment.points) == 20

    def test_invalid_scenarios(self):
        for bad in (
            {},
            {"points": [[0, 0]]},  # no radius
            {"corpus": "no-such-entry"},
            {"generator": "hexagonal", "nodes": 10},
        ):
            with pytest.raises(RegistryError):
                resolve_scenario(bad)


class TestScenarioKey:
    POINTS = [(0.0, 0.0), (1.0, 2.0), (3.5, 4.25)]

    def test_stable(self):
        assert scenario_key(self.POINTS, 1.0, "gg", {}) == scenario_key(
            self.POINTS, 1.0, "gg", {}
        )

    def test_sensitive_to_every_component(self):
        base = scenario_key(self.POINTS, 1.0, "yao", {"k": 6})
        assert base != scenario_key(self.POINTS[:2], 1.0, "yao", {"k": 6})
        assert base != scenario_key(self.POINTS, 2.0, "yao", {"k": 6})
        assert base != scenario_key(self.POINTS, 1.0, "gg", {"k": 6})
        assert base != scenario_key(self.POINTS, 1.0, "yao", {"k": 7})

    def test_param_order_irrelevant(self):
        a = scenario_key(self.POINTS, 1.0, "x", {"a": 1, "b": 2.5})
        b = scenario_key(self.POINTS, 1.0, "x", {"b": 2.5, "a": 1})
        assert a == b

    def test_resolved_scenarios_share_keys(self):
        # A corpus reference and its explicit points address one entry.
        deployment = resolve_scenario({"corpus": "paper-sparse/0"})
        explicit = [(p.x, p.y) for p in deployment.points]
        assert scenario_key(deployment.points, deployment.radius, "gg", {}) == \
            scenario_key(explicit, deployment.radius, "gg", {})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        value, hit = cache.get_or_build("k1", lambda: "built")
        assert (value, hit) == ("built", False)
        value, hit = cache.get_or_build("k1", lambda: "rebuilt")
        assert (value, hit) == ("built", True)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_disk_layer_round_trip(self, tmp_path):
        cache = ResultCache(max_entries=4, disk_dir=tmp_path)
        cache.put("k", {"payload": [1, 2, 3]})
        # A fresh cache over the same dir warms from disk.
        warm = ResultCache(max_entries=4, disk_dir=tmp_path)
        assert warm.get("k") == {"payload": [1, 2, 3]}
        assert warm.stats.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(max_entries=4, disk_dir=tmp_path)
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        assert cache.get("bad") is None
        assert cache.stats.disk_errors == 1


def _square(x):
    return x * x


def _explode(x):
    raise RuntimeError(f"boom {x}")


class TestExecutor:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_results_in_order(self, mode):
        outcome = run_batch(list(range(8)), _square, mode=mode, max_workers=2)
        assert [o.value for o in outcome.outcomes] == [x * x for x in range(8)]
        assert all(o.ok for o in outcome.outcomes)
        assert outcome.succeeded == 8 and outcome.failed == 0

    def test_errors_captured_not_raised(self):
        outcome = run_batch([1, 2], _explode, mode="thread")
        assert outcome.failed == 2
        assert "boom 1" in outcome.outcomes[0].error
        assert outcome.values() == [None, None]

    def test_mixed_serial_errors(self):
        def flaky(x):
            if x % 2:
                raise ValueError("odd")
            return x

        outcome = run_batch([0, 1, 2, 3], flaky, mode="serial")
        assert [o.ok for o in outcome.outcomes] == [True, False, True, False]

    def test_empty_batch(self):
        outcome = run_batch([], _square, mode="process")
        assert outcome.outcomes == []

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown executor mode"):
            run_batch([1], _square, mode="fiber")

    def test_timeout_marked(self):
        import time

        outcome = run_batch(
            [0.4], time.sleep, mode="thread", timeout=0.05
        )
        assert not outcome.outcomes[0].ok
        assert outcome.outcomes[0].timed_out

    def test_metrics_observed(self):
        metrics = MetricsRegistry()
        run_batch([1, 2, 3], _square, mode="serial", metrics=metrics)
        snap = metrics.snapshot()
        assert snap["latency"]["executor.task"]["count"] == 3


class TestMetrics:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.inc("requests")
        metrics.inc("requests", 4)
        assert metrics.snapshot()["counters"]["requests"] == 5

    def test_percentiles(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == pytest.approx(50.5)
        assert percentile(values, 0.99) == pytest.approx(99.01)
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.95) == 7.0

    def test_histogram_snapshot(self):
        histogram = LatencyHistogram("h")
        for ms in (10, 20, 30, 40):
            histogram.observe(ms / 1000.0)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["min_ms"] == pytest.approx(10.0)
        assert snap["max_ms"] == pytest.approx(40.0)
        assert snap["p50_ms"] == pytest.approx(25.0)

    def test_histogram_window_bounded(self):
        histogram = LatencyHistogram("h", max_samples=64)
        for i in range(1000):
            histogram.observe(i / 1000.0)
        snap = histogram.snapshot()
        assert snap["count"] == 1000  # lifetime count survives trimming
        assert len(histogram._samples) <= 64

    def test_timer(self):
        metrics = MetricsRegistry()
        with metrics.timer("op"):
            pass
        assert metrics.snapshot()["latency"]["op"]["count"] == 1
