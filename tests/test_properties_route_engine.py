"""Property-based batch-vs-scalar parity for the route engine.

Hypothesis draws small deployments — including quasi-UDG gray zones
and fields sparse enough to disconnect — and every draw must satisfy
the engine's parity contract: batch paths, reasons, and hop counts
equal the scalar routers' pair for pair, and the unreachable
accounting equals the component partition's verdict (the same
semantics ``StretchStats.unreachable_pairs`` uses — endpoints in
different components of the routed graph).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.route_engine import METHODS, RouteEngine, component_labels_for
from repro.geometry.primitives import Point
from repro.graphs.quasi import QuasiUnitDiskGraph
from repro.graphs.udg import UnitDiskGraph
from repro.routing.compass import compass_route
from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import greedy_route

SCALARS = {"greedy": greedy_route, "compass": compass_route, "gpsr": gpsr_route}

deployments = st.lists(
    st.tuples(st.integers(0, 18), st.integers(0, 18)),
    min_size=4,
    max_size=20,
    unique=True,
).map(lambda pts: [Point(x / 2.0, y / 2.0) for x, y in pts])

#: Small enough that sparse draws disconnect, large enough that dense
#: draws route multi-hop.
RADIUS = 2.5

slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def all_pairs(n, limit=40):
    pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    return pairs[:limit]


def assert_parity(graph, pairs):
    engine = RouteEngine(graph)
    labels = component_labels_for(graph)
    for method in METHODS:
        batch = engine.route_pairs(pairs, method=method)
        scalar = SCALARS[method]
        for i, (s, t) in enumerate(pairs):
            ref = scalar(graph, s, t)
            assert batch.path(i) == ref.path, (
                f"{method} path diverges for {(s, t)} on {graph.name}"
            )
            assert batch.reason(i) == ref.reason
            assert int(batch.hops[i]) == ref.hops
            cross = labels[s] != labels[t]
            assert bool(batch.unreachable[i]) == cross
            if cross:
                assert batch.reason(i) != "delivered"


@slow
@given(deployments)
def test_engine_parity_on_udg(points):
    udg = UnitDiskGraph(points, RADIUS)
    assert_parity(udg, all_pairs(udg.node_count))


@slow
@given(deployments, st.integers(0, 5))
def test_engine_parity_on_quasi(points, link_seed):
    quasi = QuasiUnitDiskGraph(
        points, RADIUS, epsilon=0.7, link_seed=link_seed, keep_probability=0.5
    )
    assert_parity(quasi, all_pairs(quasi.node_count))


@slow
@given(deployments)
def test_unreachable_count_matches_partition(points):
    udg = UnitDiskGraph(points, RADIUS)
    pairs = all_pairs(udg.node_count)
    labels = component_labels_for(udg)
    expected = sum(1 for s, t in pairs if labels[s] != labels[t])
    batch = RouteEngine(udg).route_pairs(pairs, method="greedy", keep_paths=False)
    assert batch.unreachable_pairs == expected
    assert batch.pairs == len(pairs)
    assert batch.delivered_count <= batch.pairs - expected
