"""Failure injection: protocols over lossy radios, with and without
retransmission protection."""

import random

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import (
    ClusteringProcess,
    centralized_mis,
    lowest_id_priority,
)
from repro.sim.messages import Message
from repro.sim.network import SyncNetwork
from repro.sim.protocol import NodeProcess
from repro.sim.radio import BroadcastRadio
from repro.sim.reliable import ReliableProcess, with_retransmissions
from repro.workloads.generators import connected_udg_instance


def clustering_factory(udg):
    def factory(node_id, _net):
        return ClusteringProcess(
            node_id,
            udg.positions[node_id],
            tuple(sorted(udg.neighbors(node_id))),
            lowest_id_priority,
        )

    return factory


def run_clustering_over(udg, radio, factory):
    net = SyncNetwork(udg, factory, radio=radio)
    net.run(max_rounds=4 * udg.node_count + 16)
    statuses = {p.node_id: getattr(p, "status", None) for p in net.processes}
    # ReliableProcess wraps: unwrap for status.
    for p in net.processes:
        if isinstance(p, ReliableProcess):
            statuses[p.node_id] = p.inner.status
    return statuses, net


class TestReliableWrapper:
    def test_copies_validated(self):
        inner = NodeProcess(0, Point(0, 0), ())
        with pytest.raises(ValueError):
            ReliableProcess(inner, 0)

    def test_duplicates_suppressed(self):
        received = []

        class Probe(NodeProcess):
            def receive(self, message):
                received.append(message.kind)

        wrapper = ReliableProcess(Probe(1, Point(0, 0), ()), copies=3)
        msg = Message(kind="X", sender=0, payload={"_rel_seq": 7, "_rel_copy": 0})
        dup = Message(kind="X", sender=0, payload={"_rel_seq": 7, "_rel_copy": 1})
        wrapper.receive(msg)
        wrapper.receive(dup)
        assert received == ["X"]

    def test_internal_keys_stripped(self):
        payloads = []

        class Probe(NodeProcess):
            def receive(self, message):
                payloads.append(dict(message.payload))

        wrapper = ReliableProcess(Probe(1, Point(0, 0), ()), copies=2)
        wrapper.receive(
            Message(kind="X", sender=0, payload={"a": 1, "_rel_seq": 0, "_rel_copy": 0})
        )
        assert payloads == [{"a": 1}]

    def test_unwrapped_messages_pass_through(self):
        seen = []

        class Probe(NodeProcess):
            def receive(self, message):
                seen.append(message.kind)

        wrapper = ReliableProcess(Probe(1, Point(0, 0), ()), copies=2)
        wrapper.receive(Message(kind="Plain", sender=0))
        assert seen == ["Plain"]

    def test_broadcast_multiplies_cost(self):
        udg = UnitDiskGraph([Point(0, 0), Point(1, 0)], 1.5)
        factory = with_retransmissions(clustering_factory(udg), copies=3)
        statuses, net = run_clustering_over(udg, BroadcastRadio(udg), factory)
        # Lossless: same outcome, 3x the messages.
        assert statuses[0] == "dominator"
        plain_net = SyncNetwork(udg, clustering_factory(udg))
        plain_net.run()
        assert net.stats.total == 3 * plain_net.stats.total


class TestClusteringUnderLoss:
    @pytest.fixture(scope="class")
    def udg(self):
        return connected_udg_instance(30, 150.0, 55.0, random.Random(3)).udg()

    def test_unprotected_protocol_suffers_under_loss(self, udg):
        # With 30% reception loss the bare election usually stalls
        # (white nodes miss the messages they are waiting on) or
        # mis-elects.  Find a seed demonstrating degradation.
        degraded = 0
        for seed in range(6):
            radio = BroadcastRadio(udg, loss_rate=0.3, rng=random.Random(seed))
            try:
                statuses, _ = run_clustering_over(
                    udg, radio, clustering_factory(udg)
                )
                dominators = frozenset(
                    n for n, s in statuses.items() if s == "dominator"
                )
                if statuses != {} and (
                    any(s == "white" for s in statuses.values())
                    or dominators != centralized_mis(udg)
                ):
                    degraded += 1
            except RuntimeError:
                degraded += 1
        assert degraded > 0, "30% loss should break the bare protocol sometimes"

    def test_retransmissions_restore_correctness(self, udg):
        # The run has ~1400 reception opportunities, so copies must
        # push per-message loss well below 1/1400: with loss 0.3 and
        # copies=6, 0.3^6 * 1400 ~ 1.0 expected losses network-wide,
        # and these seeded radios all complete with the exact MIS.
        expected = centralized_mis(udg)
        for seed in range(4):
            radio = BroadcastRadio(udg, loss_rate=0.3, rng=random.Random(seed))
            factory = with_retransmissions(clustering_factory(udg), copies=6)
            statuses, _ = run_clustering_over(udg, radio, factory)
            dominators = frozenset(
                n for n, s in statuses.items() if s == "dominator"
            )
            assert dominators == expected, f"seed {seed}"
