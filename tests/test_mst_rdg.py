"""Tests for the Euclidean MST and the RDG baseline."""


from repro.geometry.primitives import Point
from repro.graphs.paths import connected_components, is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.topology.mst import euclidean_mst
from repro.topology.rdg import rdg_message_cost, restricted_delaunay_graph
from repro.topology.rng import relative_neighborhood_graph


class TestEuclideanMst:
    def test_tree_edge_count(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            mst = euclidean_mst(udg)
            assert mst.edge_count == udg.node_count - 1
            assert is_connected(mst)

    def test_known_instance(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(1, 0.5)]
        udg = UnitDiskGraph(pts, 2.0)
        mst = euclidean_mst(udg)
        # 3 edges; the long 0-2 edge is never used.
        assert mst.edge_count == 3
        assert not mst.has_edge(0, 2)

    def test_forest_on_disconnected_udg(self):
        pts = [Point(0, 0), Point(1, 0), Point(10, 0), Point(11, 0)]
        udg = UnitDiskGraph(pts, 1.5)
        mst = euclidean_mst(udg)
        assert mst.edge_count == 2
        assert len(connected_components(mst)) == 2

    def test_mst_subset_of_rng(self, small_deployments):
        # Classical: EMST ⊆ RNG.
        for dep in small_deployments:
            udg = dep.udg()
            assert euclidean_mst(udg).is_subgraph_of(
                relative_neighborhood_graph(udg)
            )

    def test_minimality_against_alternatives(self, small_deployments):
        # Swapping any non-tree UDG edge in cannot reduce total length
        # (weak check: MST total length <= any spanning tree we build
        # greedily by node order).
        dep = small_deployments[0]
        udg = dep.udg()
        mst = euclidean_mst(udg)
        # BFS tree as comparison spanning tree.

        bfs_total = 0.0
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in udg.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    bfs_total += udg.edge_length(u, v)
                    frontier.append(v)
        assert mst.total_edge_length() <= bfs_total + 1e-9

    def test_empty_graph(self):
        mst = euclidean_mst(UnitDiskGraph([], 1.0))
        assert mst.node_count == 0 and mst.edge_count == 0


class TestRestrictedDelaunayGraph:
    def test_is_planar_spanning(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            rdg = restricted_delaunay_graph(udg)
            assert is_planar_embedding(rdg)
            assert is_connected(rdg)
            assert rdg.name == "RDG"

    def test_message_cost_is_degree(self, deployment):
        udg = deployment.udg()
        cost = rdg_message_cost(udg)
        assert cost == [udg.degree(u) for u in udg.nodes()]
        # Total equals twice the edge count: the O(n^2) worst case the
        # paper criticizes.
        assert sum(cost) == 2 * udg.edge_count
