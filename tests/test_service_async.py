"""The asyncio serving tier, end to end.

Covers the PR's acceptance tripwires:

* **parity** — non-streaming async responses byte-identical to the
  blocking server's on deterministic endpoints;
* **persistence** — named deployments survive a restart through the
  async tier;
* **admission control** — a saturated worker answers 429 with
  ``Retry-After``, and the client's retry loop rides through it;
* **streaming** — SSE build progress and session deltas over both
  servers;
* **graceful shutdown** — executor pools with abandoned work are
  tracked and drained, ``close()`` is idempotent and persists state;
* **concurrency** — a multi-threaded hammer mixing builds, batch
  routes, and session steps on overlapping deployments sees no
  cross-tenant bleed and consistent counters.
"""

import http.client
import json
import threading
import time

import pytest

from repro.service.aserver import AsyncBackgroundServer
from repro.service.client import ClientError, ServiceClient
from repro.service.executor import PoolTracker, run_batch
from repro.service.server import BackgroundServer, SpannerService

SCENARIO = {"nodes": 30, "side": 150.0, "radius": 55.0, "seed": 1}
TENANTS = [
    {"nodes": 24, "side": 120.0, "radius": 45.0, "seed": 21},
    {"nodes": 28, "side": 130.0, "radius": 48.0, "seed": 22},
    {"nodes": 32, "side": 140.0, "radius": 50.0, "seed": 23},
]


def raw_request(url: str, method: str, path: str, payload=None):
    """One request over http.client, returning (status, headers, bytes)."""
    host = url.split("//", 1)[1]
    conn = http.client.HTTPConnection(host, timeout=120)
    body = json.dumps(payload).encode() if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    data = response.read()
    headers = dict(response.getheaders())
    conn.close()
    return response.status, headers, data


@pytest.fixture(scope="module")
def async_server(tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("adata")
    with AsyncBackgroundServer(
        pool_size=2,
        pool_mode="thread",
        queue_depth=16,
        service_kwargs={"executor_mode": "serial", "data_dir": str(data_dir)},
    ) as server:
        yield server


@pytest.fixture(scope="module")
def blocking_server():
    with BackgroundServer(executor_mode="serial") as server:
        yield server


def scrub_timings(value):
    """Drop wall-clock keys — the only fields two independent builds
    can legitimately disagree on."""
    if isinstance(value, dict):
        return {
            key: scrub_timings(item)
            for key, item in value.items()
            if key not in ("phase_seconds", "seconds")
        }
    if isinstance(value, list):
        return [scrub_timings(item) for item in value]
    return value


class TestParity:
    """Same request -> same bytes, blocking vs async (the tripwire).

    ``exact=False`` marks the one endpoint (``/build``) whose body
    embeds wall-clock phase timings; there the comparison is canonical
    JSON with timing keys scrubbed, still field-for-field strict.
    """

    CASES = [
        ("GET", "/pipelines", None, True),
        ("POST", "/build", {"pipeline": "backbone", "scenario": SCENARIO}, False),
        ("POST", "/build", {"pipeline": "backbone", "scenario": SCENARIO}, False),
        ("POST", "/route", {"pipeline": "backbone", "scenario": SCENARIO,
                            "source": 0, "target": 20}, True),
        ("POST", "/route_batch", {"pipeline": "backbone", "scenario": SCENARIO,
                                  "count": 40, "seed": 3, "mode": "gpsr"}, True),
        ("POST", "/build", {"pipeline": "nope", "scenario": SCENARIO}, True),
        ("POST", "/build", None, True),
        ("GET", "/no/such/path", None, True),
        ("DELETE", "/session/ghost", None, True),
    ]

    def test_byte_identical_responses(self, async_server, blocking_server):
        mismatches = []
        for method, path, payload, exact in self.CASES:
            b_status, _, b_body = raw_request(
                blocking_server.url, method, path, payload
            )
            a_status, _, a_body = raw_request(
                async_server.url, method, path, payload
            )
            if not exact:
                b_body = json.dumps(
                    scrub_timings(json.loads(b_body)), sort_keys=True
                ).encode()
                a_body = json.dumps(
                    scrub_timings(json.loads(a_body)), sort_keys=True
                ).encode()
            if (b_status, b_body) != (a_status, a_body):
                mismatches.append((method, path, b_status, a_status, b_body, a_body))
        assert not mismatches, mismatches

    def test_cache_marker_flips_identically(self, async_server, blocking_server):
        """The second identical /build reports 'hit' on both servers —
        the front cache replays the same bytes the worker produced."""
        for url in (blocking_server.url, async_server.url):
            _, _, body = raw_request(
                url, "POST", "/build",
                {"pipeline": "udg", "scenario": SCENARIO},
            )
            _, _, again = raw_request(
                url, "POST", "/build",
                {"pipeline": "udg", "scenario": SCENARIO},
            )
            assert json.loads(body)["cache"] == "miss"
            assert json.loads(again)["cache"] == "hit"
            assert json.loads(again)["edges"] == json.loads(body)["edges"]


class TestPersistence:
    def test_deployments_survive_restart(self, tmp_path):
        data_dir = str(tmp_path / "persist")
        kwargs = dict(
            pool_size=2, pool_mode="thread", queue_depth=8,
            service_kwargs={"executor_mode": "serial", "data_dir": data_dir},
        )
        with AsyncBackgroundServer(**kwargs) as server:
            client = ServiceClient(server.url)
            entry = client.deployment_put("city", TENANTS[0])
            fingerprint = entry["fingerprint"]
            built = client.build("udg", {"deployment": "city"})
        with AsyncBackgroundServer(**kwargs) as server:
            client = ServiceClient(server.url)
            assert client.deployment_get("city")["fingerprint"] == fingerprint
            names = [e["name"] for e in client.deployments()["deployments"]]
            assert names == ["city"]
            rebuilt = client.build("udg", {"deployment": "city"})
            assert rebuilt["key"] == built["key"]
            assert rebuilt["edges"] == built["edges"]

    def test_unknown_deployment_404(self, async_server):
        client = ServiceClient(async_server.url, retries=0)
        with pytest.raises(ClientError) as err:
            client.build("udg", {"deployment": "ghost"})
        assert err.value.status == 404


class TestStreaming:
    def test_build_stream_event_order(self, async_server):
        client = ServiceClient(async_server.url, timeout=120)
        events = list(client.build(
            "sharded:ldel", SCENARIO, params={"shards": 4}, stream=True
        ))
        names = [name for name, _ in events]
        assert names[0] == "start"
        assert names[-1] == "end"
        assert "result" in names
        result = dict(events)["result"]
        serial = client.build("ldel", SCENARIO)
        assert result["edges"] == serial["edges"]  # stitched == serial

    def test_build_stream_cache_hit_short_circuit(self, async_server):
        client = ServiceClient(async_server.url, timeout=120)
        first = list(client.build("gg", SCENARIO, stream=True))
        second = list(client.build("gg", SCENARIO, stream=True))
        assert dict(first)["result"]["cache"] == "miss"
        assert dict(second)["result"]["cache"] == "hit"
        assert dict(second)["result"]["edges"] == dict(first)["result"]["edges"]

    def test_session_stream_deltas(self, async_server):
        client = ServiceClient(async_server.url, timeout=120)
        session = client.session_create(SCENARIO)["session"]
        batches = [
            [{"kind": "move", "node": 0, "x": 10.0, "y": 10.0}],
            [{"kind": "join", "x": 70.0, "y": 70.0}],
            [{"kind": "leave", "node": 3}],
        ]
        events = list(client.session_stream(session, batches))
        names = [name for name, _ in events]
        assert names == ["start", "delta", "delta", "delta", "end"]
        assert events[-1][1]["applied"] == 3
        # The session state advanced: the summary shows all steps.
        assert client.session_get(session)["steps"] == 3
        client.session_delete(session)

    def test_stream_validation_fails_before_streaming(self, async_server):
        client = ServiceClient(async_server.url, retries=0)
        with pytest.raises(ClientError) as err:
            list(client.session_stream("ghost", [[{"kind": "leave", "node": 0}]]))
        assert err.value.status == 404


class TestAdmissionControl:
    def test_saturation_yields_429_with_retry_after(self, tmp_path):
        with AsyncBackgroundServer(
            pool_size=1, pool_mode="thread", queue_depth=1,
            service_kwargs={"executor_mode": "serial"},
        ) as server:
            statuses, headers_seen = [], []
            lock = threading.Lock()

            def fire(seed):
                scenario = {"nodes": 60, "side": 100.0, "radius": 30.0,
                            "seed": seed}
                status, headers, _ = raw_request(
                    server.url, "POST", "/build",
                    {"pipeline": "ldel", "scenario": scenario},
                )
                with lock:
                    statuses.append(status)
                    headers_seen.append(headers)

            threads = [
                threading.Thread(target=fire, args=(seed,))
                for seed in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert 200 in statuses  # the window admitted work
            throttled = [
                header for status, header in zip(statuses, headers_seen)
                if status == 429
            ]
            assert throttled, f"no 429 under saturation: {statuses}"
            assert all("Retry-After" in header for header in throttled)

    def test_client_retries_through_throttling(self, tmp_path):
        with AsyncBackgroundServer(
            pool_size=1, pool_mode="thread", queue_depth=1,
            service_kwargs={"executor_mode": "serial"},
        ) as server:
            client = ServiceClient(
                server.url, timeout=120, retries=8, backoff_s=0.05
            )
            results = []
            lock = threading.Lock()

            def fire(seed):
                scenario = {"nodes": 50, "side": 100.0, "radius": 32.0,
                            "seed": seed}
                result = client.build("gg", scenario)
                with lock:
                    results.append(result)

            threads = [
                threading.Thread(target=fire, args=(seed,)) for seed in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(results) == 6  # every request eventually landed
            assert all(r["edges"] > 0 for r in results)


class TestGracefulShutdown:
    def test_tracker_catches_abandoned_pools(self):
        tracker = PoolTracker()
        outcome = run_batch(
            [0.4], time.sleep, mode="thread", timeout=0.05, tracker=tracker
        )
        assert outcome.outcomes[0].timed_out
        assert tracker.active() == 1
        assert tracker.drain(timeout=10.0) is True
        assert tracker.active() == 0

    def test_clean_batches_are_not_tracked(self):
        tracker = PoolTracker()
        run_batch([1, 2, 3], lambda x: x * 2, mode="thread", tracker=tracker)
        assert tracker.active() == 0

    def test_service_close_persists_and_is_idempotent(self, tmp_path):
        service = SpannerService(
            executor_mode="serial", data_dir=str(tmp_path / "cdata")
        )
        service.deployments_create({"name": "keep", "scenario": TENANTS[0]})
        service.session_create({"scenario": SCENARIO})
        summary = service.close()
        assert summary["closed"] is True
        assert summary["sessions_closed"] == 1
        assert service.close()["already"] is True
        # The manifest survived the close and a fresh service reads it.
        fresh = SpannerService(
            executor_mode="serial", data_dir=str(tmp_path / "cdata")
        )
        assert fresh.deployments_get("keep")["name"] == "keep"

    def test_background_server_closes_service(self):
        with BackgroundServer(executor_mode="serial") as server:
            service = server.service
            ServiceClient(server.url).healthz()
        assert service._closed


class TestConcurrentHammer:
    """Satellite: N threads, overlapping tenants, no cache bleed."""

    THREADS = 6
    ROUNDS = 3

    def test_mixed_workload_consistency(self, async_server):
        client = ServiceClient(async_server.url, timeout=120, retries=6)
        before = client.metrics()
        edges_seen = {i: set() for i in range(len(TENANTS))}
        session_steps = []
        errors = []
        lock = threading.Lock()

        def hammer(thread_id):
            try:
                session = client.session_create(
                    TENANTS[thread_id % len(TENANTS)]
                )["session"]
                for round_no in range(self.ROUNDS):
                    tenant = (thread_id + round_no) % len(TENANTS)
                    built = client.build("backbone", TENANTS[tenant])
                    with lock:
                        edges_seen[tenant].add(
                            (built["key"], built["edges"], built["nodes"])
                        )
                    routed = client.route_batch(
                        key=built["key"], count=20, seed=round_no, mode="greedy"
                    )
                    assert routed["pairs"] == 20
                    step = client.session_step(
                        session,
                        [{"kind": "move", "node": 0,
                          "x": 5.0 + round_no, "y": 5.0 + thread_id}],
                    )
                    with lock:
                        session_steps.append((session, step["step"]))
                client.session_delete(session)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                with lock:
                    errors.append(f"thread {thread_id}: {exc!r}")

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        # No cross-tenant bleed: every thread saw exactly one
        # (key, edges, nodes) triple per tenant, and tenants differ.
        for tenant, seen in edges_seen.items():
            assert len(seen) == 1, f"tenant {tenant} answers diverged: {seen}"
        keys = {next(iter(seen))[0] for seen in edges_seen.values()}
        assert len(keys) == len(TENANTS)
        # Sessions were isolated: each advanced monotonically to ROUNDS.
        per_session = {}
        for session, step in session_steps:
            per_session.setdefault(session, []).append(step)
        assert len(per_session) == self.THREADS
        for steps in per_session.values():
            assert sorted(steps) == list(range(1, self.ROUNDS + 1))
        # Counters stayed consistent: hits + misses == worker requests,
        # and the front saw at least every request we sent.
        after = client.metrics()
        counters = after["counters"]
        assert counters["build.cache_hits"] + counters["build.cache_misses"] >= (
            counters["build.requests"]
        )
        front_requests = after["front"]["counters"]["front.requests"]
        before_front = before["front"]["counters"].get("front.requests", 0)
        assert front_requests - before_front >= self.THREADS * self.ROUNDS
        assert after["sessions"]["active"] == before["sessions"]["active"]


class TestClientRetrySemantics:
    def test_connection_error_retry_then_success(self):
        """The client retries connection refusals until the server is up."""
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listening yet

        client = ServiceClient(
            f"http://127.0.0.1:{port}", retries=10, backoff_s=0.1,
            max_backoff_s=0.2, timeout=10,
        )
        server_holder = {}

        def start_later():
            time.sleep(0.5)
            from repro.service.server import make_server

            httpd, service = make_server(port=port, executor_mode="serial")
            server_holder["httpd"] = httpd
            httpd.serve_forever()

        thread = threading.Thread(target=start_later, daemon=True)
        thread.start()
        try:
            assert client.healthz()["status"] == "ok"
            assert client.retry_count > 0
        finally:
            httpd = server_holder.get("httpd")
            if httpd is not None:
                httpd.shutdown()
                httpd.server_close()
            thread.join(timeout=5)

    def test_no_retry_on_client_errors(self, async_server):
        client = ServiceClient(async_server.url, retries=5)
        before = client.retry_count
        with pytest.raises(ClientError) as err:
            client.build("nope", SCENARIO)
        assert err.value.status == 400
        assert client.retry_count == before  # 400s are not retried

    def test_non_idempotent_posts_fail_fast_on_connection_error(self):
        """A lost response after the server applied a POST could hide a
        duplicate; state-mutating calls must not auto-retry connection
        errors, while pure-computation calls still do."""
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listening: every connect is refused

        client = ServiceClient(
            f"http://127.0.0.1:{port}", retries=4, backoff_s=0.01,
            max_backoff_s=0.05, timeout=5,
        )
        with pytest.raises(ClientError) as err:
            client.session_create(SCENARIO)
        assert err.value.status == 0
        assert client.retry_count == 0
        with pytest.raises(ClientError):
            client.deployment_put("dup", SCENARIO)
        assert client.retry_count == 0
        with pytest.raises(ClientError):
            client.session_delete("w0-s1")
        assert client.retry_count == 0
        # The same failure on an idempotent request is retried.
        with pytest.raises(ClientError):
            client.build("udg", SCENARIO)
        assert client.retry_count == 4


class TestFrontCacheInvalidation:
    """Responses derived from a named deployment must never be
    replayed by the front byte-cache: the name is mutable state."""

    def test_dispatch_marks_deployment_scenarios_uncacheable(self, tmp_path):
        from repro.service.dispatch import dispatch

        service = SpannerService(
            executor_mode="serial", data_dir=str(tmp_path / "ddata")
        )
        try:
            service.deployments_create({"name": "pin", "scenario": TENANTS[0]})
            build_body = json.dumps(
                {"pipeline": "udg", "scenario": {"deployment": "pin"}}
            ).encode()
            first = dispatch(service, "POST", "/build", build_body)
            warm = dispatch(service, "POST", "/build", build_body)
            assert json.loads(warm.encode())["cache"] == "hit"
            assert first.cacheable is False
            assert warm.cacheable is False  # warm hit, still uncacheable
            route = dispatch(service, "POST", "/route", json.dumps({
                "pipeline": "backbone", "scenario": {"deployment": "pin"},
                "source": 0, "target": 5,
            }).encode())
            assert route.status == 200 and route.cacheable is False
            batch = dispatch(service, "POST", "/route_batch", json.dumps({
                "pipeline": "backbone", "scenario": {"deployment": "pin"},
                "count": 3, "seed": 1,
            }).encode())
            assert batch.status == 200 and batch.cacheable is False
            # Explicit scenarios are pure functions of the request
            # bytes and keep their cache hint.
            explicit = dispatch(service, "POST", "/route", json.dumps({
                "pipeline": "backbone", "scenario": TENANTS[0],
                "source": 0, "target": 5,
            }).encode())
            assert explicit.status == 200 and explicit.cacheable is True
        finally:
            service.close()

    def test_overwritten_deployment_not_served_stale(self, tmp_path):
        with AsyncBackgroundServer(
            pool_size=2, pool_mode="thread", queue_depth=8,
            service_kwargs={
                "executor_mode": "serial",
                "data_dir": str(tmp_path / "fcdata"),
            },
        ) as server:
            client = ServiceClient(server.url)
            client.deployment_put("mut", TENANTS[0])
            first = client.build("udg", {"deployment": "mut"})
            warm = client.build("udg", {"deployment": "mut"})
            assert warm["cache"] == "hit"
            assert warm["key"] == first["key"]
            # Re-point the name at a different point set; the same
            # request bytes must now produce the new answer.
            client.deployment_put("mut", TENANTS[1])
            after = client.build("udg", {"deployment": "mut"})
            assert after["key"] != first["key"]
            assert after["nodes"] == TENANTS[1]["nodes"]


class TestDeploymentPlacement:
    def test_deployments_pin_to_worker_zero(self):
        """All /deployments traffic lands on worker 0 — the store's
        single writer — regardless of payload or pool size."""
        from repro.service.aserver import AsyncSpannerServer

        server = AsyncSpannerServer(pool_size=4, pool_mode="thread")
        body = json.dumps({"name": "n", "scenario": SCENARIO}).encode()
        assert server._pick_worker("POST", "/deployments", body) == 0
        assert server._pick_worker("GET", "/deployments", None) == 0
        assert server._pick_worker("GET", "/deployments/some-name", None) == 0
        assert server._pick_worker("DELETE", "/deployments/some-name", None) == 0


class TestStreamWorkerFailure:
    """A worker dying mid-stream delivers a terminal "json" failure
    message; the streaming loops must treat it as end-of-stream
    instead of waiting forever for an "end" that never comes."""

    def test_respond_terminates_on_failure_message(self):
        import asyncio

        from repro.service.aserver import AsyncSpannerServer

        server = AsyncSpannerServer(pool_size=1, pool_mode="thread")

        class FakeWriter:
            def __init__(self):
                self.data = bytearray()

            def write(self, chunk):
                self.data.extend(chunk)

            async def drain(self):
                return None

        async def scenario():
            messages = asyncio.Queue()
            messages.put_nowait((7, "stream", 200, "text/event-stream"))
            messages.put_nowait((7, "frame", b"event: start\ndata: {}\n\n"))
            messages.put_nowait(
                (7, "json", 500, b'{"error": "worker connection lost"}', False)
            )

            async def fake_call(worker, method, path, raw_body):
                return messages

            server._call_worker = fake_call
            writer = FakeWriter()
            result = await asyncio.wait_for(
                server._respond(writer, "POST", "/build_stream", b"{}", True),
                timeout=10.0,
            )
            return result, bytes(writer.data)

        result, written = asyncio.run(scenario())
        assert result is False  # the truncated stream closes the connection
        assert b"event: start" in written

    def test_drain_stream_stops_on_failure_message(self):
        import asyncio

        from repro.service.aserver import AsyncSpannerServer

        async def scenario():
            messages = asyncio.Queue()
            messages.put_nowait((3, "frame", b"data: x\n\n"))
            messages.put_nowait((3, "json", 500, b'{"error": "lost"}', False))
            await asyncio.wait_for(
                AsyncSpannerServer._drain_stream(messages), timeout=10.0
            )

        asyncio.run(scenario())


class TestParserHardening:
    @staticmethod
    def raw_bytes(url, data):
        """Send raw bytes and collect the response until close."""
        import socket

        host, port = url.split("//", 1)[1].split(":")
        with socket.create_connection((host, int(port)), timeout=60) as sock:
            sock.sendall(data)
            response = b""
            while True:
                got = sock.recv(65536)
                if not got:
                    break
                response += got
        return response

    def test_chunked_transfer_encoding_rejected(self, async_server):
        """Chunked bodies are not parsed; accepting one would desync
        the keep-alive stream, so the request is refused outright."""
        response = self.raw_bytes(
            async_server.url,
            b"POST /build HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
            b"2\r\n{}\r\n0\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 501")
        assert b"Connection: close" in response

    def test_malformed_content_length_rejected(self, async_server):
        response = self.raw_bytes(
            async_server.url,
            b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: abc\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in response
