"""Consistent-hash placement: ring balance, affinity, session pinning."""

import pytest

from repro.service.router import (
    HashRing,
    KeyAffinity,
    placement_key,
    scenario_fingerprint,
    session_worker,
)


class TestHashRing:
    def test_stable_mapping(self):
        a, b = HashRing(4), HashRing(4)
        for i in range(200):
            key = f"deployment:{i}"
            assert a.worker_for(key) == b.worker_for(key)

    def test_balance_within_tolerance(self):
        ring = HashRing(4)
        counts = ring.spread([f"k{i}" for i in range(4000)])
        assert sum(counts) == 4000
        for count in counts:
            assert 0.5 * 1000 < count < 1.6 * 1000  # virtual nodes smooth it

    def test_minimal_remap_on_grow(self):
        """Consistent hashing's defining property: growing the pool
        moves only ~1/(n+1) of the keys."""
        small, large = HashRing(4), HashRing(5)
        keys = [f"k{i}" for i in range(2000)]
        moved = sum(
            1 for k in keys if small.worker_for(k) != large.worker_for(k)
        )
        assert moved < 0.45 * len(keys)  # ~0.2 expected; modulo would be ~0.8

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            HashRing(0)


class TestKeyAffinity:
    def test_record_lookup(self):
        affinity = KeyAffinity()
        affinity.record("abc", 3)
        assert affinity.lookup("abc") == 3
        assert affinity.lookup("unknown") is None

    def test_lru_bound(self):
        affinity = KeyAffinity(max_entries=4)
        for i in range(8):
            affinity.record(f"k{i}", i)
        assert len(affinity) == 4
        assert affinity.lookup("k0") is None
        assert affinity.lookup("k7") == 7

    def test_lookup_refreshes(self):
        affinity = KeyAffinity(max_entries=2)
        affinity.record("a", 0)
        affinity.record("b", 1)
        affinity.lookup("a")  # refresh: "b" is now the LRU entry
        affinity.record("c", 2)
        assert affinity.lookup("a") == 0
        assert affinity.lookup("b") is None


class TestSessionPinning:
    @pytest.mark.parametrize(
        "session_id,expected",
        [("w0-s1", 0), ("w3-s17", 3), ("s1", None), ("w-s1", None), ("", None)],
    )
    def test_parse(self, session_id, expected):
        assert session_worker(session_id) == expected


class TestPlacementKey:
    def test_key_requests_pin_to_build_key(self):
        key = placement_key("POST", ["route"], {"key": "deadbeef"})
        assert key == "key:deadbeef"

    def test_scenario_requests_hash_scenario(self):
        scenario = {"nodes": 10, "seed": 1}
        key = placement_key("POST", ["build"], {"scenario": scenario})
        assert key == f"scenario:{scenario_fingerprint(scenario)}"
        # Same spec, different insertion order: same placement.
        reordered = {"seed": 1, "nodes": 10}
        assert placement_key("POST", ["build"], {"scenario": reordered}) == key

    def test_no_affinity_paths(self):
        assert placement_key("GET", ["healthz"], None) is None
        assert placement_key("GET", ["pipelines"], None) is None
        assert placement_key("POST", ["validate"], {}) is None
