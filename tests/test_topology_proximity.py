"""Tests for RNG, Gabriel, UDel and their classical containment chain.

RNG(V) ⊆ GG(V) ⊆ UDel(V) ⊆ UDG(V), all connected when the UDG is,
all planar — the textbook hierarchy both the paper and its baselines
rely on.
"""


from repro.geometry.primitives import Point
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.topology.delaunay_udg import delaunay_graph, unit_delaunay_graph
from repro.topology.gabriel import gabriel_graph
from repro.topology.rng import relative_neighborhood_graph


class TestRelativeNeighborhoodGraph:
    def test_blocked_edge(self):
        # w sits in the lune of u and v.
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.2)]
        udg = UnitDiskGraph(pts, 1.5)
        rng_graph = relative_neighborhood_graph(udg)
        assert not rng_graph.has_edge(0, 1)
        assert rng_graph.has_edge(0, 2) and rng_graph.has_edge(1, 2)

    def test_no_blocker_keeps_edge(self):
        pts = [Point(0, 0), Point(1, 0)]
        udg = UnitDiskGraph(pts, 1.5)
        assert relative_neighborhood_graph(udg).has_edge(0, 1)

    def test_blocker_beyond_radius_is_irrelevant(self):
        # w in the lune of (u, v) but the lune test only applies to UDG
        # edges; if |uv| > radius there is no edge to block.
        pts = [Point(0, 0), Point(2, 0), Point(1, 0.1)]
        udg = UnitDiskGraph(pts, 1.5)
        rng_graph = relative_neighborhood_graph(udg)
        assert not udg.has_edge(0, 1)
        assert not rng_graph.has_edge(0, 1)


class TestGabrielGraph:
    def test_blocked_by_diameter_disk_witness(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.1)]
        udg = UnitDiskGraph(pts, 1.5)
        gg = gabriel_graph(udg)
        assert not gg.has_edge(0, 1)

    def test_lune_witness_outside_disk_keeps_gabriel_edge(self):
        # In the lune (blocks RNG) but outside the diameter disk
        # (Gabriel keeps it): the classic RNG-strict-subset witness.
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.8)]
        udg = UnitDiskGraph(pts, 1.5)
        assert gabriel_graph(udg).has_edge(0, 1)
        assert not relative_neighborhood_graph(udg).has_edge(0, 1)


class TestUnitDelaunay:
    def test_udel_edges_within_radius(self, deployment):
        udg = deployment.udg()
        udel = unit_delaunay_graph(udg)
        for u, v in udel.edges():
            assert udel.edge_length(u, v) <= udg.radius + 1e-9

    def test_udel_subset_of_delaunay(self, deployment):
        udg = deployment.udg()
        udel = unit_delaunay_graph(udg)
        full = delaunay_graph(udg.positions)
        assert udel.is_subgraph_of(full)


class TestContainmentChain:
    def test_rng_subset_gg_subset_udel(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            rng_graph = relative_neighborhood_graph(udg)
            gg = gabriel_graph(udg)
            udel = unit_delaunay_graph(udg)
            assert rng_graph.is_subgraph_of(gg)
            assert gg.is_subgraph_of(udel)
            assert udel.is_subgraph_of(udg)

    def test_all_connected(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            assert is_connected(relative_neighborhood_graph(udg))
            assert is_connected(gabriel_graph(udg))
            assert is_connected(unit_delaunay_graph(udg))

    def test_all_planar(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            assert is_planar_embedding(relative_neighborhood_graph(udg))
            assert is_planar_embedding(gabriel_graph(udg))
            assert is_planar_embedding(unit_delaunay_graph(udg))

    def test_sparseness(self, small_deployments):
        # Planar graphs have at most 3n - 6 edges.
        for dep in small_deployments:
            udg = dep.udg()
            n = udg.node_count
            assert gabriel_graph(udg).edge_count <= 3 * n - 6
