"""Persistent deployment store: durability, round-trips, restarts."""

import json

import pytest

from repro.service.registry import resolve_scenario
from repro.service.store import DeploymentStore, StoreError
from repro.workloads.io import deployment_fingerprint

SCENARIO = {"nodes": 25, "side": 90.0, "radius": 35.0, "seed": 11}
OTHER = {"nodes": 18, "side": 80.0, "radius": 40.0, "seed": 12}


@pytest.fixture()
def deployment():
    return resolve_scenario(SCENARIO)


class TestRoundTrip:
    def test_put_get_preserves_points(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        entry = store.put("alpha", deployment)
        assert entry["name"] == "alpha"
        assert entry["nodes"] == len(deployment.points)
        loaded = store.get("alpha")
        assert [(p.x, p.y) for p in loaded.points] == [
            (p.x, p.y) for p in deployment.points
        ]
        assert loaded.radius == deployment.radius

    def test_restart_sees_entries(self, tmp_path, deployment):
        DeploymentStore(tmp_path).put("alpha", deployment)
        reopened = DeploymentStore(tmp_path)
        assert "alpha" in reopened
        assert reopened.entry("alpha")["fingerprint"] == deployment_fingerprint(
            deployment
        )
        loaded = reopened.get("alpha")
        assert len(loaded.points) == len(deployment.points)

    def test_two_names_one_document(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        store.put("alpha", deployment)
        store.put("beta", deployment)
        documents = list(store.documents_dir.glob("*.json"))
        assert len(documents) == 1  # content-addressed: no copy
        assert len(store) == 2

    def test_idempotent_put_keeps_stored_at(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        first = store.put("alpha", deployment)
        second = store.put("alpha", deployment)
        assert second["stored_at"] == first["stored_at"]

    def test_delete_unpublishes(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        store.put("alpha", deployment)
        removed = store.delete("alpha")
        assert removed["name"] == "alpha"
        assert "alpha" not in store
        with pytest.raises(StoreError):
            store.entry("alpha")

    def test_listing_sorted(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        other = resolve_scenario(OTHER)
        store.put("zeta", deployment)
        store.put("alpha", other)
        names = [entry["name"] for entry in store.listing()]
        assert names == ["alpha", "zeta"]


class TestValidationAndConflicts:
    @pytest.mark.parametrize("name", ["", "a/b", ".hidden"])
    def test_bad_names_rejected(self, tmp_path, deployment, name):
        with pytest.raises(ValueError):
            DeploymentStore(tmp_path).put(name, deployment)

    def test_overwrite_false_conflicts(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        store.put("alpha", deployment)
        with pytest.raises(StoreError):
            store.put("alpha", resolve_scenario(OTHER), overwrite=False)

    def test_missing_name_raises(self, tmp_path):
        with pytest.raises(StoreError):
            DeploymentStore(tmp_path).get("ghost")


class TestConcurrentView:
    def test_reader_observes_writer(self, tmp_path, deployment):
        """Two handles over one directory: reads see the other's writes."""
        writer = DeploymentStore(tmp_path)
        reader = DeploymentStore(tmp_path)
        assert len(reader) == 0
        writer.put("alpha", deployment)
        assert "alpha" in reader  # (mtime, size) stamp triggers reload
        writer.delete("alpha")
        assert "alpha" not in reader

    def test_torn_manifest_keeps_previous_view(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        store.put("alpha", deployment)
        store.manifest_path.write_text("{not json")
        assert "alpha" in store  # reload failure keeps the last good view

    def test_manifest_is_valid_json_with_version(self, tmp_path, deployment):
        store = DeploymentStore(tmp_path)
        store.put("alpha", deployment)
        doc = json.loads(store.manifest_path.read_text())
        assert doc["version"] == 1
        assert "alpha" in doc["deployments"]


class TestConcurrentWriters:
    def test_interleaved_writers_lose_no_updates(self, tmp_path, deployment):
        """Two independent handles (separate in-process locks, exactly
        like two pool worker processes) write concurrently; the flock
        around the manifest read-modify-write means every acknowledged
        put survives — no last-writer-wins dropped names."""
        import threading

        stores = [DeploymentStore(tmp_path), DeploymentStore(tmp_path)]
        per_writer = 15
        errors = []

        def write(idx):
            try:
                for i in range(per_writer):
                    stores[idx].put(f"w{idx}-{i:02d}", deployment)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"writer {idx}: {exc!r}")

        threads = [
            threading.Thread(target=write, args=(idx,)) for idx in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        fresh = DeploymentStore(tmp_path)
        names = {entry["name"] for entry in fresh.listing()}
        assert names == {
            f"w{idx}-{i:02d}" for idx in range(2) for i in range(per_writer)
        }
