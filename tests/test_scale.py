"""Scale test: the pipeline's invariants at a larger-than-usual size.

One n=250 instance exercised end to end.  Not a performance benchmark
(those live in benchmarks/), but a guard against properties that only
break when structures get big: planarity with thousands of candidate
triangle pairs, message bounds at high density, GPSR on a large planar
graph.
"""

import random

import pytest

from repro.core.metrics import hop_stretch, length_stretch
from repro.core.spanner import build_backbone
from repro.graphs.paths import is_connected
from repro.graphs.planarity import is_planar_embedding
from repro.routing.gpsr import gpsr_route
from repro.workloads.generators import connected_udg_instance


@pytest.fixture(scope="module")
def big():
    deployment = connected_udg_instance(250, 200.0, 50.0, random.Random(31))
    result = build_backbone(deployment.points, deployment.radius)
    return deployment, result


class TestScale:
    def test_backbone_planar(self, big):
        _dep, result = big
        assert is_planar_embedding(result.ldel_icds)

    def test_spanning_connected(self, big):
        _dep, result = big
        assert is_connected(result.ldel_icds_prime)

    def test_degree_bound_holds_at_density(self, big):
        _dep, result = big
        assert max(result.ldel_icds.degrees()) <= 16
        assert max(result.cds.degrees()) <= 30

    def test_message_bound_holds_at_density(self, big):
        _dep, result = big
        assert result.stats_ldel.max_per_node() <= 120
        assert result.stats_ldel.total <= 120 * result.udg.node_count

    def test_stretch_constant_at_density(self, big):
        _dep, result = big
        length = length_stretch(
            result.ldel_icds_prime, result.udg, skip_udg_adjacent=True
        )
        hops = hop_stretch(
            result.ldel_icds_prime, result.udg, skip_udg_adjacent=True
        )
        assert length.max < 6.0
        assert hops.max < 5.0

    def test_gpsr_delivers_on_large_backbone(self, big):
        _dep, result = big
        members = sorted(result.backbone_nodes)
        pairs = [
            (members[i], members[-1 - i]) for i in range(0, len(members) // 2, 5)
        ]
        for s, t in pairs:
            if s == t:
                continue
            assert gpsr_route(result.ldel_icds, s, t).delivered

    def test_backbone_is_small_fraction(self, big):
        _dep, result = big
        # At this density the CDS should be well under half the nodes.
        assert len(result.backbone_nodes) < 0.5 * result.udg.node_count
