"""Unit + property tests for the from-scratch Delaunay triangulation.

The gold standard is the empty-circumcircle property itself, checked
directly; scipy.spatial.Delaunay provides an independent
implementation to cross-validate the edge set against.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.circle import circumcircle
from repro.geometry.hull import convex_hull
from repro.geometry.primitives import Point
from repro.geometry.triangulation import delaunay

scipy_spatial = pytest.importorskip("scipy.spatial")


def random_points(n, seed, side=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]


class TestDegenerateInputs:
    def test_empty(self):
        tri = delaunay([])
        assert tri.triangles == [] and tri.edges == set()

    def test_single_point(self):
        tri = delaunay([Point(1, 1)])
        assert tri.triangles == [] and tri.edges == set()

    def test_two_points(self):
        tri = delaunay([Point(0, 0), Point(1, 0)])
        assert tri.triangles == []
        assert tri.edges == {(0, 1)}

    def test_collinear_points_form_path(self):
        pts = [Point(float(i), 0.0) for i in (3, 0, 1, 2)]
        tri = delaunay(pts)
        assert tri.triangles == []
        # Path along the sorted order: 0-1, 1-2, 2-3 in coordinates.
        assert tri.edges == {(1, 2), (2, 3), (0, 3)}

    def test_duplicate_points_collapse(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1), Point(0, 0)]
        tri = delaunay(pts)
        assert tri.triangles == [(0, 1, 2)]

    def test_single_triangle(self):
        tri = delaunay([Point(0, 0), Point(2, 0), Point(1, 2)])
        assert tri.triangles == [(0, 1, 2)]
        assert tri.edges == {(0, 1), (1, 2), (0, 2)}


class TestDelaunayProperty:
    @pytest.mark.parametrize("seed", range(8))
    def test_empty_circumcircles(self, seed):
        pts = random_points(30, seed)
        tri = delaunay(pts)
        for a, b, c in tri.triangles:
            circle = circumcircle(pts[a], pts[b], pts[c])
            assert circle is not None
            for i, p in enumerate(pts):
                if i in (a, b, c):
                    continue
                assert not circle.contains(p, tol=1e-7), (
                    f"point {i} inside circumcircle of triangle {(a, b, c)}"
                )

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scipy_edges(self, seed):
        pts = random_points(40, seed)
        ours = delaunay(pts)
        sp = scipy_spatial.Delaunay([(p.x, p.y) for p in pts])
        sp_edges = set()
        for simplex in sp.simplices:
            a, b, c = sorted(int(i) for i in simplex)
            sp_edges |= {(a, b), (b, c), (a, c)}
        assert ours.edges == sp_edges

    @pytest.mark.parametrize("seed", range(4))
    def test_triangle_count_euler(self, seed):
        # For points in general position: T = 2n - 2 - h (h hull points).
        pts = random_points(50, seed)
        tri = delaunay(pts)
        h = len(convex_hull(pts))
        assert len(tri.triangles) == 2 * len(pts) - 2 - h

    def test_cocircular_square_still_triangulates(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        tri = delaunay(square)
        assert len(tri.triangles) == 2
        assert len(tri.edges) == 5

    def test_grid_handles_many_cocircular_quadruples(self):
        pts = [Point(float(i), float(j)) for i in range(5) for j in range(5)]
        tri = delaunay(pts)
        # 25 points, 16 hull -> 2*25 - 2 - 16 = 32 triangles.
        assert len(tri.triangles) == 32


class TestTriangulationAccessors:
    def test_adjacency(self):
        tri = delaunay([Point(0, 0), Point(2, 0), Point(1, 2)])
        adj = tri.adjacency()
        assert adj[0] == {1, 2}

    def test_triangles_of(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 2), Point(3, 2)]
        tri = delaunay(pts)
        assert all(0 in t for t in tri.triangles_of(0))
        assert len(tri.triangles_of(1)) >= 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=40),
        ),
        min_size=3,
        max_size=25,
        unique=True,
    )
)
def test_hypothesis_delaunay_circumcircles_empty(int_coords):
    """Integer grids maximize collinear/cocircular degeneracy."""
    pts = [Point(float(x), float(y)) for x, y in int_coords]
    tri = delaunay(pts)
    for a, b, c in tri.triangles:
        circle = circumcircle(pts[a], pts[b], pts[c])
        assert circle is not None
        for i, p in enumerate(pts):
            if i not in (a, b, c):
                assert not circle.contains(p, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False).map(
                lambda v: round(v, 6)
            ),
            st.floats(min_value=0, max_value=100, allow_nan=False).map(
                lambda v: round(v, 6)
            ),
        ),
        min_size=2,
        max_size=25,
        unique=True,
    )
)
def test_hypothesis_edges_connect_all_points(float_coords):
    """The Delaunay graph of >= 2 distinct points is connected."""
    pts = [Point(x, y) for x, y in float_coords]
    distinct = sorted(set(pts))
    if len(distinct) < 2:
        return
    tri = delaunay(pts)
    adj = tri.adjacency()
    index_of_first = {p: i for i, p in reversed(list(enumerate(pts)))}
    start = index_of_first[distinct[0]]
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    expected = {index_of_first[p] for p in distinct}
    assert expected <= seen
