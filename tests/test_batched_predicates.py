"""Property suite for the batched geometric predicates.

Every batch predicate in :mod:`repro.geometry` promises one of two
things: *pure replication* (the float arithmetic is IEEE-identical to
the scalar expression, so the result IS the scalar result per row) or
*adaptive exactness* (a float determinant plus an error band, with
ambiguous rows recomputed by Fraction arithmetic — so the band may
only defer, never contradict).  Hypothesis drives both promises over
the inputs most likely to break them: exact grids (cocircular
quadruples, collinear runs), duplicated points, and near-degenerate
perturbations sitting inside the error bands.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compat import np
from repro.geometry.circle import circumcircle, circumcircles_batch, contains_batch
from repro.geometry.predicates import (
    _exact_incircle_row,
    _exact_orient_row,
    incircle_signs_batch,
    orient_signs_batch,
    orientation,
    orientation_codes_batch,
    segments_cross,
    segments_cross_batch,
)
from repro.geometry.primitives import Point, dist_sq

pytestmark = pytest.mark.skipif(np is None, reason="requires numpy")


# Coordinates chosen to stress the predicates: exact small integers
# (grids — exactly collinear triples and cocircular quadruples),
# ordinary floats, and integers scaled down to sit inside the error
# bands (near-degenerate but not exactly degenerate).
coords = st.one_of(
    st.integers(-8, 8).map(float),
    st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False, width=64),
    st.tuples(st.integers(-8, 8), st.integers(-40, 40)).map(
        lambda t: t[0] + t[1] * 1e-13
    ),
)

point = st.tuples(coords, coords)


def _cols(rows, width):
    """Transpose row tuples into float64 column arrays."""
    return [
        np.array([row[i] for row in rows], dtype=np.float64)
        for i in range(width)
    ]


def _flat(pts):
    return [c for p in pts for c in p]


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(point, point, point), min_size=1, max_size=16))
def test_orientation_codes_replicate_scalar(triples):
    arrays = _cols([_flat(t) for t in triples], 6)
    codes = orientation_codes_batch(*arrays)
    for row, (a, b, c) in enumerate(triples):
        expected = orientation(Point(*a), Point(*b), Point(*c))
        assert codes[row] == int(expected)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(point, point, point), min_size=1, max_size=16))
def test_orient_band_never_misclassifies(triples):
    arrays = _cols([_flat(t) for t in triples], 6)
    signs, ambiguous = orient_signs_batch(*arrays)
    for row, (a, b, c) in enumerate(triples):
        exact = _exact_orient_row(a[0], a[1], b[0], b[1], c[0], c[1])
        # Clear rows must already agree with exact arithmetic; the band
        # may only defer (route rows to Fraction), never contradict.
        assert signs[row] == exact, (row, bool(ambiguous[row]))


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(point, point, point, point), min_size=1, max_size=12))
def test_incircle_band_never_misclassifies(quads):
    arrays = _cols([_flat(q) for q in quads], 8)
    signs, ambiguous = incircle_signs_batch(*arrays)
    for row, (a, b, c, d) in enumerate(quads):
        exact = _exact_incircle_row(
            a[0], a[1], b[0], b[1], c[0], c[1], d[0], d[1]
        )
        assert signs[row] == exact, (row, bool(ambiguous[row]))


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(point, point, point, point), min_size=1, max_size=12))
def test_segments_cross_batch_replicates_scalar(quads):
    arrays = _cols([_flat(q) for q in quads], 8)
    crosses = segments_cross_batch(*arrays)
    for row, (p1, q1, p2, q2) in enumerate(quads):
        expected = segments_cross(
            Point(*p1), Point(*q1), Point(*p2), Point(*q2)
        )
        assert bool(crosses[row]) == expected


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(point, point, point), min_size=1, max_size=12))
def test_circumcircles_batch_replicates_scalar(triples):
    arrays = _cols([_flat(t) for t in triples], 6)
    valid, ux, uy, radius = circumcircles_batch(*arrays)
    for row, (a, b, c) in enumerate(triples):
        circle = circumcircle(Point(*a), Point(*b), Point(*c))
        if circle is None:
            assert not valid[row]
        else:
            assert valid[row]
            assert (ux[row], uy[row]) == tuple(circle.center)
            assert radius[row] == circle.radius


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.tuples(point, point, point), min_size=1, max_size=8),
    point,
)
def test_contains_batch_replicates_scalar(triples, probe):
    arrays = _cols([_flat(t) for t in triples], 6)
    valid, ux, uy, radius = circumcircles_batch(*arrays)
    px = np.full(len(triples), probe[0])
    py = np.full(len(triples), probe[1])
    inside = contains_batch(ux, uy, radius, px, py)
    for row, (a, b, c) in enumerate(triples):
        circle = circumcircle(Point(*a), Point(*b), Point(*c))
        if circle is None:
            continue
        assert bool(inside[row]) == circle.contains(Point(*probe))


def test_exactly_cocircular_quadruple_is_ambiguous_and_zero():
    # Four points of an axis-aligned square: exactly cocircular, so the
    # float determinant is 0 and the exact path must report 0 too.
    pts = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]
    arrays = _cols([_flat(pts)], 8)
    signs, ambiguous = incircle_signs_batch(*arrays)
    assert signs[0] == 0
    assert ambiguous[0]


def test_near_cocircular_band_defers_to_exact():
    # Perturb the probe point off the circle by one part in 1e13 —
    # inside the float error band, so the row must defer and the
    # deferred sign must match exact arithmetic.
    base = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)]
    for delta in (1e-13, -1e-13):
        d = (0.0, 2.0 + delta)
        arrays = _cols([_flat(base + [d])], 8)
        signs, _ = incircle_signs_batch(*arrays)
        exact = _exact_incircle_row(
            0.0, 0.0, 2.0, 0.0, 2.0, 2.0, d[0], d[1]
        )
        assert signs[0] == exact


def test_collinear_run_orientation_zero():
    run = [((0.0, 0.0), (1.0, 1.0), (float(k), float(k))) for k in range(2, 12)]
    arrays = _cols([_flat(t) for t in run], 6)
    codes = orientation_codes_batch(*arrays)
    assert not codes.any()
