"""Tests for beacon-based neighbor discovery."""

import random

import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.neighbor_discovery import BEACON, detect_changes


def tables_of(udg):
    return {u: frozenset(udg.neighbors(u)) for u in udg.nodes()}


class TestStableNetwork:
    def test_no_churn_detected(self, deployment):
        udg = deployment.udg()
        outcome = detect_changes(
            list(deployment.points), deployment.radius, tables_of(udg)
        )
        assert not outcome.any_change
        assert outcome.lost_links() == frozenset()

    def test_beacon_cost(self, deployment):
        udg = deployment.udg()
        outcome = detect_changes(
            list(deployment.points), deployment.radius, tables_of(udg),
            beacon_rounds=3,
        )
        assert outcome.stats.per_kind[BEACON] == 3 * udg.node_count
        assert outcome.stats.max_per_node() == 3


class TestChurnDetection:
    def setup_world(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        udg = UnitDiskGraph(pts, 1.2)
        return pts, udg

    def test_lost_neighbor(self):
        pts, udg = self.setup_world()
        moved = [pts[0], Point(5.0, 0.0), pts[2]]  # node 1 walks away
        outcome = detect_changes(moved, 1.2, tables_of(udg))
        assert 1 in outcome.changes[0].lost
        assert 1 in outcome.changes[2].lost
        assert (0, 1) in outcome.lost_links()
        assert (1, 2) in outcome.lost_links()

    def test_gained_neighbor(self):
        pts, udg = self.setup_world()
        moved = [pts[0], pts[1], Point(1.0, 0.5)]  # node 2 moves near 0
        outcome = detect_changes(moved, 1.2, tables_of(udg))
        assert 2 in outcome.changes[0].gained
        assert 0 in outcome.changes[2].gained

    def test_matches_omniscient_diff(self, deployment):
        # The distributed detection equals the global neighborhood diff.
        from repro.mobility.local_repair import changed_neighborhoods

        rng = random.Random(9)
        moved = [
            Point(p.x + rng.uniform(-20, 20), p.y + rng.uniform(-20, 20))
            for p in deployment.points
        ]
        old_udg = deployment.udg()
        new_udg = UnitDiskGraph(moved, deployment.radius)
        outcome = detect_changes(moved, deployment.radius, tables_of(old_udg))
        omniscient = changed_neighborhoods(old_udg, new_udg)
        detected = frozenset(
            node for node, change in outcome.changes.items() if change.changed
        )
        assert detected == omniscient


class TestValidation:
    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            detect_changes([Point(0, 0)], 1.0, {}, beacon_rounds=0)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            detect_changes(
                [Point(0, 0)], 1.0, {}, beacon_rounds=2, miss_threshold=3
            )

    def test_unknown_node_table_defaults_empty(self):
        # A brand-new node (no previous table) gains all its neighbors.
        pts = [Point(0, 0), Point(0.5, 0)]
        outcome = detect_changes(pts, 1.0, {0: frozenset({1})})
        assert outcome.changes[1].gained == frozenset({0})
        assert not outcome.changes[0].changed
