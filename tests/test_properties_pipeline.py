"""Property-based tests over randomly generated deployments.

Hypothesis drives the node placement; every draw must satisfy the
paper's invariants end to end.  These are the heaviest properties in
the suite, so example counts are kept moderate; the seeds that matter
get cached in hypothesis's example database.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.spanner import build_backbone
from repro.geometry.primitives import Point
from repro.graphs.paths import bfs_hops, connected_components
from repro.graphs.planarity import is_planar_embedding
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.clustering import centralized_mis, run_clustering
from repro.protocols.ldel_protocol import run_ldel_protocol
from repro.topology.gabriel import gabriel_graph
from repro.topology.ldel import planar_local_delaunay_graph
from repro.topology.rng import relative_neighborhood_graph

# Deployments: 4-28 nodes on a coarse grid scaled into a ~[0,10]^2
# region, radius 3.  Coarse coordinates generate plenty of collinear /
# near-cocircular layouts, which stress the geometry more than uniform
# floats do.
deployments = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)),
    min_size=4,
    max_size=28,
    unique=True,
).map(lambda pts: [Point(x / 2.0, y / 2.0) for x, y in pts])

RADIUS = 3.0

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@slow
@given(deployments)
def test_mis_invariants(points):
    udg = UnitDiskGraph(points, RADIUS)
    outcome = run_clustering(udg)
    doms = outcome.dominators
    # Independence.
    for u in doms:
        assert not (udg.neighbors(u) & doms)
    # Domination.
    for u in udg.nodes():
        assert u in doms or (udg.neighbors(u) & doms)
    # Matches the centralized greedy.
    assert doms == centralized_mis(udg)
    # Lemma 1.
    for adjacent in outcome.dominators_of.values():
        assert len(adjacent) <= 5


@slow
@given(deployments)
def test_pldel_planar_and_spans_components(points):
    udg = UnitDiskGraph(points, RADIUS)
    pldel = planar_local_delaunay_graph(udg)
    assert is_planar_embedding(pldel.graph)
    # PLDel preserves the UDG's connectivity structure exactly.
    assert components(pldel.graph) == components(udg)


@slow
@given(deployments)
def test_distributed_ldel_equals_centralized(points):
    udg = UnitDiskGraph(points, RADIUS)
    distributed = run_ldel_protocol(udg)
    centralized = planar_local_delaunay_graph(udg)
    assert distributed.graph.edge_set() == centralized.graph.edge_set()


@slow
@given(deployments)
def test_backbone_headline_properties(points):
    result = build_backbone(points, RADIUS)
    udg = result.udg
    # Planarity of the backbone.
    assert is_planar_embedding(result.ldel_icds)
    # The spanning structure preserves component structure.
    assert components(result.ldel_icds_prime) == components(udg)
    # Constant per-node communication (generous constant).
    assert result.stats_ldel.max_per_node() <= 150
    # Hop bound of Lemma 5 within each component.
    for source in list(udg.nodes())[:5]:
        h_udg = bfs_hops(udg, source)
        h_bb = bfs_hops(result.cds_prime, source)
        for target in udg.nodes():
            if h_udg[target] > 1:
                assert 0 < h_bb[target] <= 3 * h_udg[target] + 2


@slow
@given(deployments)
def test_proximity_chain_and_connectivity(points):
    udg = UnitDiskGraph(points, RADIUS)
    rng_graph = relative_neighborhood_graph(udg)
    gg = gabriel_graph(udg)
    assert rng_graph.is_subgraph_of(gg)
    assert gg.is_subgraph_of(udg)
    assert components(rng_graph) == components(udg)


def components(graph):
    """Canonical component partition for equality checks."""
    return sorted(tuple(sorted(c)) for c in connected_components(graph))
