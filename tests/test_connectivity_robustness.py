"""Tests for articulation points, bridges and failure robustness."""


import pytest

from repro.geometry.primitives import Point
from repro.graphs.connectivity import (
    articulation_points,
    bridges,
    robustness,
    survives_failures,
)
from repro.graphs.graph import Graph
from repro.graphs.paths import connected_components


def path_graph(n):
    pts = [Point(float(i), 0.0) for i in range(n)]
    return Graph(pts, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    pts = [Point(float(i), 0.0) for i in range(n)]
    return Graph(pts, [(i, (i + 1) % n) for i in range(n)])


class TestArticulationPoints:
    def test_path_interior_nodes(self):
        assert articulation_points(path_graph(5)) == {1, 2, 3}

    def test_cycle_has_none(self):
        assert articulation_points(cycle_graph(6)) == frozenset()

    def test_star_hub(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1), Point(-1, 0)]
        star = Graph(pts, [(0, 1), (0, 2), (0, 3)])
        assert articulation_points(star) == {0}

    def test_two_triangles_sharing_a_vertex(self):
        pts = [Point(float(i), float(i % 2)) for i in range(5)]
        g = Graph(pts, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        assert articulation_points(g) == {2}

    def test_matches_brute_force(self, small_deployments):
        from repro.topology.gabriel import gabriel_graph

        for dep in small_deployments[:3]:
            g = gabriel_graph(dep.udg())
            fast = articulation_points(g)
            brute = set()
            base = len(connected_components(g))
            for v in g.nodes():
                survivor = survives_failures(g, [v])
                # Removing v also isolates it; compare non-singleton
                # component counts among the other nodes.
                comps = [
                    c for c in connected_components(survivor) if v not in c or len(c) > 1
                ]
                comps = [c - {v} for c in comps]
                comps = [c for c in comps if c]
                if len(comps) > base:
                    brute.add(v)
            assert fast == brute

    def test_empty_and_single(self):
        assert articulation_points(Graph([])) == frozenset()
        assert articulation_points(Graph([Point(0, 0)])) == frozenset()


class TestBridges:
    def test_every_path_edge_is_a_bridge(self):
        assert bridges(path_graph(4)) == {(0, 1), (1, 2), (2, 3)}

    def test_cycle_has_none(self):
        assert bridges(cycle_graph(5)) == frozenset()

    def test_bridge_between_cycles(self):
        pts = [Point(float(i), 0.0) for i in range(6)]
        g = Graph(
            pts,
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        )
        assert bridges(g) == {(2, 3)}


class TestRobustnessReport:
    def test_cycle_is_biconnected(self):
        report = robustness(cycle_graph(8))
        assert report.biconnected
        assert report.cut_fraction == 0.0

    def test_path_is_fragile(self):
        report = robustness(path_graph(10))
        assert not report.biconnected
        assert report.cut_fraction == pytest.approx(8 / 10)

    def test_restricted_to_node_subset(self, backbone):
        report = robustness(backbone.icds, nodes=backbone.backbone_nodes)
        assert report.node_count == len(backbone.backbone_nodes)
        assert 0.0 <= report.cut_fraction <= 1.0

    def test_empty(self):
        report = robustness(Graph([]))
        assert report.cut_fraction == 0.0


class TestSurvivesFailures:
    def test_removes_incident_edges(self):
        g = path_graph(4)
        survivor = survives_failures(g, [1])
        assert survivor.degree(1) == 0
        assert survivor.has_edge(2, 3)
        assert not survivor.has_edge(0, 1)

    def test_node_ids_stable(self, backbone):
        failed = sorted(backbone.connectors)[:2]
        survivor = survives_failures(backbone.ldel_icds, failed)
        assert survivor.node_count == backbone.ldel_icds.node_count


class TestBackboneRobustness:
    def test_icds_less_fragile_than_cds(self, small_deployments):
        """The paper's redundancy argument: ICDS keeps every UDG link
        among backbone nodes, so it is never more fragile than the
        elected-edges-only CDS."""
        from repro.core.spanner import build_backbone

        for dep in small_deployments[:3]:
            result = build_backbone(dep.points, dep.radius)
            members = result.backbone_nodes
            cds_report = robustness(result.cds, nodes=members)
            icds_report = robustness(result.icds, nodes=members)
            assert icds_report.cut_fraction <= cds_report.cut_fraction + 1e-9

    def test_routing_survives_non_cut_failure(self, backbone):
        from repro.routing.gpsr import gpsr_route

        members = sorted(backbone.backbone_nodes)
        report = robustness(backbone.ldel_icds, nodes=backbone.backbone_nodes)
        remap = {new: old for new, old in enumerate(sorted(members))}
        safe = [
            remap[i]
            for i in range(len(members))
            if i not in report.articulation_points
        ]
        if len(safe) < 3:
            pytest.skip("no safe node to fail on this instance")
        victim = safe[len(safe) // 2]
        survivor = survives_failures(backbone.ldel_icds, [victim])
        others = [m for m in members if m != victim]
        route = gpsr_route(survivor, others[0], others[-1])
        assert route.delivered
