"""Tests for Max-Min d-cluster formation."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.paths import bfs_hops
from repro.graphs.udg import UnitDiskGraph
from repro.protocols.maxmin_cluster import run_maxmin_clustering
from repro.sim.messages import Message


def line_udg(n):
    return UnitDiskGraph([Point(float(i), 0.0) for i in range(n)], 1.0)


class TestBasics:
    def test_d_must_be_positive(self):
        with pytest.raises(ValueError):
            run_maxmin_clustering(line_udg(3), d=0)

    def test_single_node_heads_itself(self):
        udg = UnitDiskGraph([Point(0, 0)], 1.0)
        outcome = run_maxmin_clustering(udg, d=2)
        assert outcome.clusterheads == {0}
        assert outcome.head_of[0] == 0

    def test_every_node_has_a_head(self, deployment):
        udg = deployment.udg()
        outcome = run_maxmin_clustering(udg, d=2)
        assert set(outcome.head_of) == set(udg.nodes())
        assert outcome.clusterheads

    def test_heads_head_themselves(self, deployment):
        outcome = run_maxmin_clustering(deployment.udg(), d=2)
        for h in outcome.clusterheads:
            assert outcome.head_of[h] == h


class TestDHopGuarantee:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_every_node_within_d_hops_of_its_head(self, small_deployments, d):
        """The algorithm's defining guarantee."""
        for dep in small_deployments:
            udg = dep.udg()
            outcome = run_maxmin_clustering(udg, d=d)
            for node, head in outcome.head_of.items():
                hops = bfs_hops(udg, node)[head]
                assert 0 <= hops <= d, (
                    f"node {node} is {hops} hops from head {head} (d={d})"
                )

    def test_larger_d_gives_fewer_heads(self, small_deployments):
        for dep in small_deployments:
            udg = dep.udg()
            h1 = len(run_maxmin_clustering(udg, d=1).clusterheads)
            h3 = len(run_maxmin_clustering(udg, d=3).clusterheads)
            assert h3 <= h1


class TestLineBehaviour:
    def test_line_highest_id_is_a_head(self):
        # On a line 0..8 with d=2: node 8 wins floodmax everywhere in
        # its 2-hop radius, so it heads itself.  (Node 7 also ends up a
        # head via Rule 1: its ID conquers node 5 in floodmax and the
        # floodmin wave carries it back — the algorithm's deliberate
        # load-balancing behaviour.)
        outcome = run_maxmin_clustering(line_udg(9), d=2)
        assert 8 in outcome.clusterheads
        assert outcome.head_of[8] == 8
        assert outcome.head_of[7] in outcome.clusterheads

    def test_rounds_are_2d(self):
        outcome = run_maxmin_clustering(line_udg(9), d=3)
        # 2d flooding rounds plus the final tally round.
        assert outcome.rounds <= 2 * 3 + 2


class TestMessageCost:
    def test_2d_broadcasts_per_node(self, deployment):
        d = 2
        udg = deployment.udg()
        outcome = run_maxmin_clustering(udg, d=d)
        assert outcome.stats.max_per_node() == 2 * d
        assert outcome.stats.total == 2 * d * udg.node_count
