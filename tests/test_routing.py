"""Tests for greedy, face, GPSR and backbone routing."""

import math

import pytest

from repro.geometry.primitives import Point
from repro.graphs.graph import Graph
from repro.graphs.paths import breadth_first_path
from repro.routing.backbone_routing import backbone_route
from repro.routing.face import face_route
from repro.routing.gpsr import gpsr_route
from repro.routing.greedy import greedy_route


def void_graph():
    """A 'void': greedy from 0 toward 5 gets stuck at a local minimum.

    Node 1 is the closest to the target among 0's neighbors but has no
    neighbor closer than itself; the detour goes around via 2-3-4.
    """
    pts = [
        Point(0.0, 0.0),   # 0 source
        Point(1.0, 0.0),   # 1 dead-end lure (local minimum)
        Point(0.4, 0.9),   # 2 detour top
        Point(1.4, 1.0),   # 3
        Point(2.2, 0.6),   # 4
        Point(2.4, 0.0),   # 5 target
    ]
    edges = [(0, 1), (0, 2), (2, 3), (3, 4), (4, 5)]
    return Graph(pts, edges)


class TestGreedyRoute:
    def test_delivers_on_straight_chain(self):
        pts = [Point(float(i), 0.0) for i in range(5)]
        g = Graph(pts, [(i, i + 1) for i in range(4)])
        result = greedy_route(g, 0, 4)
        assert result.delivered
        assert result.path == (0, 1, 2, 3, 4)
        assert result.hops == 4
        assert result.length(g) == pytest.approx(4.0)

    def test_source_is_target(self):
        g = void_graph()
        result = greedy_route(g, 3, 3)
        assert result.delivered and result.hops == 0

    def test_stuck_at_local_minimum(self):
        g = void_graph()
        result = greedy_route(g, 0, 5)
        assert not result.delivered
        assert result.reason == "stuck"
        assert result.path[-1] == 1

    def test_hop_limit(self):
        pts = [Point(float(i), 0.0) for i in range(5)]
        g = Graph(pts, [(i, i + 1) for i in range(4)])
        result = greedy_route(g, 0, 4, max_hops=2)
        assert not result.delivered and result.reason == "hop-limit"


class TestFaceRoute:
    def test_routes_around_the_void(self):
        g = void_graph()
        result = face_route(g, 0, 5)
        assert result.delivered

    def test_delivers_on_triangle(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.9)]
        g = Graph(pts, [(0, 1), (1, 2), (0, 2)])
        assert face_route(g, 0, 1).delivered

    def test_unreachable_target_loops_out(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.9), Point(5, 5)]
        g = Graph(pts, [(0, 1), (1, 2), (0, 2)])
        result = face_route(g, 0, 3)
        assert not result.delivered
        assert result.reason in ("loop", "stuck", "hop-limit")

    def test_resume_distance_stops_early(self):
        g = void_graph()
        # Perimeter-mode contract: stop once closer than the stuck node.
        d_stuck = math.dist(g.positions[1], g.positions[5])
        result = face_route(g, 1, 5, resume_distance=d_stuck)
        assert not result.delivered
        assert result.reason == "greedy-resume"
        assert math.dist(g.positions[result.path[-1]], g.positions[5]) < d_stuck

    def test_isolated_source_is_stuck(self):
        pts = [Point(0, 0), Point(5, 5)]
        g = Graph(pts)
        assert face_route(g, 0, 1).reason == "stuck"


class TestGpsrRoute:
    def test_recovers_from_local_minimum(self):
        g = void_graph()
        result = gpsr_route(g, 0, 5)
        assert result.delivered

    def test_delivers_everywhere_on_planar_backbone(self, backbone):
        graph = backbone.ldel_icds
        nodes = sorted(backbone.backbone_nodes)
        failures = []
        for s in nodes:
            for t in nodes:
                if s != t and not gpsr_route(graph, s, t).delivered:
                    failures.append((s, t))
        assert not failures, f"GPSR failed on planar backbone: {failures[:5]}"

    def test_path_is_walk_in_graph(self, backbone):
        graph = backbone.ldel_icds
        nodes = sorted(backbone.backbone_nodes)
        result = gpsr_route(graph, nodes[0], nodes[-1])
        assert result.delivered
        for a, b in zip(result.path, result.path[1:]):
            assert graph.has_edge(a, b)


class TestBackboneRoute:
    def test_direct_delivery_within_range(self, backbone):
        udg = backbone.udg
        u, v = next(iter(udg.edges()))
        result = backbone_route(backbone, u, v)
        assert result.delivered and result.path == (u, v)

    def test_source_equals_target(self, backbone):
        result = backbone_route(backbone, 0, 0)
        assert result.delivered and result.hops == 0

    def test_all_pairs_delivered(self, backbone):
        udg = backbone.udg
        nodes = list(udg.nodes())
        for s in nodes[::7]:
            for t in nodes[::5]:
                if s == t:
                    continue
                result = backbone_route(backbone, s, t)
                assert result.delivered, f"failed {s}->{t}: {result.reason}"

    def test_path_uses_real_links(self, backbone):
        udg = backbone.udg
        nodes = list(udg.nodes())
        result = backbone_route(backbone, nodes[0], nodes[-1])
        assert result.delivered
        for a, b in zip(result.path, result.path[1:]):
            assert udg.has_edge(a, b), f"hop {a}->{b} is not a radio link"

    def test_rejects_unknown_mode(self, backbone):
        with pytest.raises(ValueError):
            backbone_route(backbone, 0, 1, mode="teleport")

    def test_greedy_mode_runs(self, backbone):
        nodes = sorted(backbone.udg.nodes())
        delivered = sum(
            backbone_route(backbone, nodes[0], t, mode="greedy").delivered
            for t in nodes[1:10]
        )
        assert delivered >= 1  # greedy works at least sometimes

    def test_hop_count_reasonable(self, backbone):
        # Backbone route should be within a constant factor of optimal.
        udg = backbone.udg
        nodes = list(udg.nodes())
        for s, t in [(nodes[0], nodes[-1]), (nodes[1], nodes[-2])]:
            if s == t:
                continue
            optimal = breadth_first_path(udg, s, t).hops
            routed = backbone_route(backbone, s, t).hops
            assert routed <= 3 * optimal + 4
